//! End-to-end gate semantics: `detlint::run` over a real directory
//! tree. A deliberately seeded violation must be detected with the
//! correct file:line and rule id (and would fail `scripts/ci.sh lint`,
//! which exits non-zero on any unsuppressed finding), and the actual
//! workspace must scan clean — the same invariant the CI gate enforces.

use std::fs;
use std::path::{Path, PathBuf};

/// Build a throwaway mini-workspace under the OS temp dir.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "detlint-gate-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        TempTree { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\npub fn ok() {}\n";

#[test]
fn seeded_violation_fails_the_gate_with_file_line_and_rule() {
    let t = TempTree::new("seeded");
    t.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"simcore\"\n\n[dependencies]\ntestkit.workspace = true\n",
    );
    t.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\npub fn ok() {}\n",
    );
    let report = detlint::run(&t.root).unwrap();
    assert!(report.has_findings(), "the seeded violation must fail the gate");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule.id(), "unordered_iter");
    assert_eq!(f.file, "crates/demo/src/lib.rs");
    assert_eq!(f.line, 2);
    // This is exactly the condition `scripts/ci.sh lint` turns into a
    // non-zero exit (the bin maps has_findings -> ExitCode::FAILURE).
}

#[test]
fn clean_tree_passes_and_counts_files() {
    let t = TempTree::new("clean");
    t.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"wire\"\n\n[dependencies]\n",
    );
    t.write("crates/demo/src/lib.rs", CLEAN_LIB);
    let report = detlint::run(&t.root).unwrap();
    assert!(!report.has_findings(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn fixture_and_target_directories_are_skipped() {
    let t = TempTree::new("skip");
    t.write("crates/demo/src/lib.rs", CLEAN_LIB);
    t.write(
        "crates/demo/fixtures/bad.rs",
        "use std::collections::HashMap;\n",
    );
    t.write("target/debug/gen.rs", "use std::time::SystemTime;\n");
    let report = detlint::run(&t.root).unwrap();
    assert!(!report.has_findings(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 1, "only the real source file is scanned");
}

#[test]
fn json_report_round_trips_the_findings() {
    let t = TempTree::new("json");
    t.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nfn f() { let _ = std::time::SystemTime::now(); }\n",
    );
    let report = detlint::run(&t.root).unwrap();
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"wall_clock\""));
    assert!(json.contains("\"file\": \"crates/demo/src/lib.rs\""));
    assert!(json.contains("\"line\": 2"));
}

/// The real workspace must be clean: this mirrors the `scripts/ci.sh
/// lint` gate from inside `cargo test`, so a determinism violation
/// anywhere in the tree fails tier-1 too.
#[test]
fn whole_workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    assert!(root.join("ROADMAP.md").exists(), "workspace root not found");
    let report = detlint::run(&root).unwrap();
    assert!(
        !report.has_findings(),
        "workspace has unsuppressed detlint findings:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 100, "scan saw the whole workspace");
    assert!(report.suppressed >= 7, "the annotated legitimate sites are counted");

    // The scan set covers integration tests, examples, and per-crate
    // test trees — not just crates/*/src. These paths are load-bearing:
    // a seeded wall-clock read in an example must fail the gate too.
    for pinned in [
        "tests/determinism.rs",
        "examples/quickstart.rs",
        "crates/tcp/tests/survival.rs",
        "crates/detlint/tests/gate.rs",
        "Cargo.toml",
    ] {
        assert!(
            report.scanned.iter().any(|p| p == pinned),
            "expected {pinned} in the scan set"
        );
    }
}
