//! detlint throughput benchmarks: the lint pass runs inside every CI
//! gate, so its cost is part of the edit-compile-test loop. The
//! workspace is read into memory once; the benches then measure the
//! pure analysis pipeline (no filesystem in the timed region). Runs on
//! the testkit microbench harness and writes `BENCH_detlint.json`,
//! gated by benchgate in `scripts/ci.sh bench`.

use std::path::Path;
use testkit::bench::bb;
use testkit::BenchSuite;

fn main() {
    // CARGO_MANIFEST_DIR = crates/detlint; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    assert!(root.join("ROADMAP.md").exists(), "workspace root not found");
    let sources = detlint::collect_sources(root).expect("read workspace");
    let total_bytes: usize = sources.iter().map(|s| s.contents.len()).sum();
    eprintln!(
        "bench detlint: {} files, {} KiB in memory",
        sources.len(),
        total_bytes / 1024
    );

    let mut suite = BenchSuite::new("detlint");

    suite.bench("lex_workspace", || {
        let mut tokens = 0usize;
        for s in &sources {
            if !s.rel_path.ends_with("Cargo.toml") {
                tokens += detlint::lexer::lex_full(bb(&s.contents)).tokens.len();
            }
        }
        tokens
    });

    suite.bench("parse_workspace", || {
        let mut items = 0usize;
        for s in &sources {
            if !s.rel_path.ends_with("Cargo.toml") {
                let lexed = detlint::lexer::lex_full(bb(&s.contents));
                let parsed = detlint::parser::parse_file(&lexed.tokens);
                items += parsed.fns.len() + parsed.structs.len() + parsed.consts.len();
            }
        }
        items
    });

    suite.bench("full_workspace_scan", || {
        let report = detlint::analyze(bb(&sources));
        (report.files_scanned, report.findings.len(), report.suppressed)
    });

    suite.finish();
}
