//! The workspace symbol graph.
//!
//! One [`Unit`] per scanned Rust file (tokens + parsed item skeleton);
//! [`SymbolGraph`] indexes the units so the workspace rules in
//! [`crate::wsrules`] can answer cross-file questions: "where is this
//! constant declared?", "which `write_digest` bodies fold this struct's
//! counters?", "which structs own the shard vector?". All indexes use
//! `BTree` collections — detlint lints itself, and `unordered_iter`
//! applies to its own source too.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{ident, Lexed, Token};
use crate::parser::{FnInfo, ParsedFile};

/// One scanned Rust file: path, token stream, item skeleton.
#[derive(Debug)]
pub struct Unit {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Tokens + comments from [`crate::lexer::lex_full`].
    pub lexed: Lexed,
    /// Item skeleton from [`crate::parser::parse_file`].
    pub parsed: ParsedFile,
}

impl Unit {
    /// The tokens of a function body (empty for signature-only fns).
    pub fn body_tokens(&self, f: &FnInfo) -> &[Token] {
        if f.body.0 >= f.body.1 {
            return &[];
        }
        &self.lexed.tokens[f.body.0..=f.body.1]
    }

    /// Is this line inside the file's `#[cfg(test)]` tail?
    pub fn in_cfg_test(&self, line: u32) -> bool {
        self.parsed.cfg_test_line.is_some_and(|l| line >= l)
    }
}

/// Cross-file symbol indexes over a set of [`Unit`]s.
pub struct SymbolGraph<'a> {
    /// The underlying units, in scan order.
    pub units: &'a [Unit],
    /// Every const name declared anywhere (module level or impl level).
    const_names: BTreeSet<&'a str>,
    /// `write_digest` bodies by owning type name:
    /// `type name -> [(unit index, fn)]`.
    digest_fns: BTreeMap<&'a str, Vec<(usize, &'a FnInfo)>>,
}

impl<'a> SymbolGraph<'a> {
    /// Index `units`. One pass over the parsed skeletons; token streams
    /// are only touched later, per query.
    pub fn build(units: &'a [Unit]) -> Self {
        let mut const_names = BTreeSet::new();
        let mut digest_fns: BTreeMap<&str, Vec<(usize, &FnInfo)>> = BTreeMap::new();
        for (ui, u) in units.iter().enumerate() {
            for c in &u.parsed.consts {
                const_names.insert(c.name.as_str());
            }
            for f in &u.parsed.fns {
                if f.name == "write_digest" {
                    if let Some(owner) = &f.owner {
                        digest_fns.entry(owner.as_str()).or_default().push((ui, f));
                    }
                }
            }
        }
        SymbolGraph { units, const_names, digest_fns }
    }

    /// Is a constant with this name declared anywhere in the workspace?
    pub fn const_declared(&self, name: &str) -> bool {
        self.const_names.contains(name)
    }

    /// Union of identifiers mentioned in every `write_digest` body whose
    /// impl type is `ty`, across all files — the v2 upgrade over v1's
    /// same-file search. `None` when no such body exists anywhere (a
    /// struct without a digest has nothing to be covered by).
    pub fn digest_idents(&self, ty: &str) -> Option<BTreeSet<&'a str>> {
        let fns = self.digest_fns.get(ty)?;
        let mut out = BTreeSet::new();
        let mut any_body = false;
        for &(ui, f) in fns {
            let body = self.units[ui].body_tokens(f);
            if body.is_empty() {
                continue; // trait-declaration signature, not a fold
            }
            any_body = true;
            for t in body {
                if let Some(s) = ident(t) {
                    out.insert(s);
                }
            }
        }
        any_body.then_some(out)
    }

    /// Names of structs in `unit` that own the shard vector (a field
    /// named `shards`) — the leader types whose methods alone may touch
    /// other shards' state.
    pub fn leader_structs(&self, unit: &'a Unit) -> BTreeSet<&'a str> {
        unit.parsed
            .structs
            .iter()
            .filter(|s| s.fields.iter().any(|f| f.name == "shards"))
            .map(|s| s.name.as_str())
            .collect()
    }
}

/// Is this const a forked-RNG stream label by naming convention?
pub fn is_stream_const(name: &str) -> bool {
    name.ends_with("_STREAM_LABEL") || name.ends_with("_STREAM_BASE")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_full;
    use crate::parser::parse_file;

    fn unit(rel_path: &str, src: &str) -> Unit {
        let lexed = lex_full(src);
        let parsed = parse_file(&lexed.tokens);
        Unit { rel_path: rel_path.to_string(), lexed, parsed }
    }

    #[test]
    fn digest_idents_union_across_files() {
        let units = vec![
            unit(
                "crates/a/src/stats.rs",
                "pub struct Stats { pub sent: u64, pub lost: u64 }\n",
            ),
            unit(
                "crates/a/src/fold.rs",
                "impl Stats { pub fn write_digest(&self, d: &mut Digest) { d.u64(self.sent); } }\n",
            ),
            unit(
                "crates/b/src/statfold.rs",
                "impl InjectorStats for Stats { fn write_digest(&self, d: &mut Digest) { d.u64(self.lost); } }\n",
            ),
        ];
        let g = SymbolGraph::build(&units);
        let ids = g.digest_idents("Stats").expect("two bodies exist");
        assert!(ids.contains("sent") && ids.contains("lost"));
        assert!(g.digest_idents("Nothing").is_none());
    }

    #[test]
    fn leader_structs_by_shards_field() {
        let u = unit(
            "crates/rdcn/src/shard.rs",
            "pub struct ShardedEmulator { shards: Vec<Mutex<RackShard>> }\n\
             pub struct RackShard { outbox: Vec<OutMsg> }\n",
        );
        let units = vec![u];
        let g = SymbolGraph::build(&units);
        let leaders = g.leader_structs(&units[0]);
        assert!(leaders.contains("ShardedEmulator"));
        assert!(!leaders.contains("RackShard"));
    }

    #[test]
    fn stream_const_naming() {
        assert!(is_stream_const("FAULT_STREAM_LABEL"));
        assert!(is_stream_const("RACK_STREAM_BASE"));
        assert!(!is_stream_const("STREAM_LABELS"));
    }
}
