//! Workspace rules: checks that need the cross-file symbol graph.
//!
//! * `stream_discipline` — forked-RNG stream labels are the only thing
//!   keeping per-plane randomness independent (DESIGN.md §4): two
//!   constants with the same value silently correlate two streams, and
//!   an inline magic number at a `fork(...)` call site can collide with
//!   a declared label without any single file showing the conflict. So:
//!   every `*_STREAM_LABEL` / `*_STREAM_BASE` constant must be
//!   workspace-unique (by name and by value), and every non-test
//!   `fork(...)` call site must reference a declared label constant.
//! * `digest_coverage` (v2) — same counter-omission check as v1, but
//!   the `write_digest` fold may live in any file, inherent or trait
//!   impl (`rdcn::statfold`). The union of every fold body for the type
//!   must name every pub counter.
//! * `shard_safety` — in shard-engine files, only the leader type (the
//!   struct owning the `shards` vector) may touch other shards' state;
//!   any other function mentioning `shards` is a mailbox bypass. And a
//!   function draining mailboxes (`outbox`/`mailbox` in scope) must not
//!   accumulate floats through iterator folds — cross-rack float
//!   folding is only deterministic in the explicit fixed `(src, dst)`
//!   drain order.
//! * `suppression_audit` lives in [`crate::suppress`]: it needs the
//!   per-directive hit counts that only exist after every other rule
//!   has run and suppression has been applied.

use std::collections::BTreeMap;

use crate::graph::{is_stream_const, SymbolGraph, Unit};
use crate::lexer::{ident, Tok};
use crate::report::{Finding, RuleId};
use crate::rules::{float_acc_sites, is_test_path};

/// Run every workspace rule over the graph.
pub fn check_workspace(graph: &SymbolGraph<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    stream_discipline(graph, &mut findings);
    digest_coverage(graph, &mut findings);
    shard_safety(graph, &mut findings);
    findings
}

/// Units whose own (non-`#[cfg(test)]`) code is production scope.
fn prod_units<'a>(graph: &'a SymbolGraph<'_>) -> impl Iterator<Item = &'a Unit> {
    graph.units.iter().filter(|u| !is_test_path(&u.rel_path))
}

fn stream_discipline(graph: &SymbolGraph<'_>, findings: &mut Vec<Finding>) {
    // Declared stream constants, production scope only.
    // name -> [(file, line)], value -> [(name, file, line)]
    let mut by_name: BTreeMap<&str, Vec<(&str, u32)>> = BTreeMap::new();
    let mut by_value: BTreeMap<u64, Vec<(&str, &str, u32)>> = BTreeMap::new();
    for u in prod_units(graph) {
        for c in &u.parsed.consts {
            if !is_stream_const(&c.name) || u.in_cfg_test(c.line) {
                continue;
            }
            by_name.entry(&c.name).or_default().push((&u.rel_path, c.line));
            if let Some(v) = c.value {
                by_value
                    .entry(v)
                    .or_default()
                    .push((&c.name, &u.rel_path, c.line));
            }
        }
    }
    for (name, mut decls) in by_name {
        if decls.len() < 2 {
            continue;
        }
        decls.sort();
        let (first_file, first_line) = decls[0];
        for &(file, line) in &decls[1..] {
            findings.push(Finding {
                rule: RuleId::StreamDiscipline,
                file: file.to_string(),
                line,
                message: format!(
                    "stream label `{name}` is also declared at {first_file}:{first_line}; \
                     labels must be workspace-unique"
                ),
            });
        }
    }
    for (value, mut decls) in by_value {
        if decls.len() < 2 {
            continue;
        }
        decls.sort_by_key(|&(_, file, line)| (file.to_string(), line));
        // Same name twice is already reported above; only flag distinct
        // names sharing a value.
        let (first_name, first_file, first_line) = decls[0];
        for &(name, file, line) in &decls[1..] {
            if name == first_name {
                continue;
            }
            findings.push(Finding {
                rule: RuleId::StreamDiscipline,
                file: file.to_string(),
                line,
                message: format!(
                    "stream label `{name}` duplicates the value {value:#x} of `{first_name}` \
                     ({first_file}:{first_line}); identical labels fork identical streams"
                ),
            });
        }
    }

    // Call sites: every non-test `.fork(...)` must reference a declared
    // label constant, never an inline number.
    for u in prod_units(graph) {
        let toks = &u.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ident(t) != Some("fork")
                || !matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('(')))
                || i == 0
                || !matches!(toks[i - 1].kind, Tok::Punct('.') | Tok::Punct(':'))
                || u.in_cfg_test(t.line)
            {
                continue;
            }
            // Balanced argument scan.
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut has_int = false;
            let mut label_idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => depth -= 1,
                    Tok::IntLit(_) => has_int = true,
                    Tok::Ident(s) if is_stream_const(s) => label_idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            if label_idents.is_empty() {
                if has_int {
                    findings.push(Finding {
                        rule: RuleId::StreamDiscipline,
                        file: u.rel_path.clone(),
                        line: t.line,
                        message: "fork(...) with an inline numeric label; declare a \
                                  `*_STREAM_LABEL` constant so collisions are checkable \
                                  workspace-wide"
                            .into(),
                    });
                }
            } else {
                for name in label_idents {
                    if !graph.const_declared(name) {
                        findings.push(Finding {
                            rule: RuleId::StreamDiscipline,
                            file: u.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "fork(...) references `{name}`, which is not declared as a \
                                 constant anywhere in the workspace"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Counter fields of a pub struct: `pub name: u64|i64|u32` with a bare
/// type — the same criterion v1 used, read off the parsed skeleton.
fn counter_fields(s: &crate::parser::StructInfo) -> Vec<(&str, u32)> {
    s.fields
        .iter()
        .filter(|f| {
            f.is_pub && f.ty_is_simple && matches!(f.ty.as_str(), "u64" | "i64" | "u32")
        })
        .map(|f| (f.name.as_str(), f.line))
        .collect()
}

fn digest_coverage(graph: &SymbolGraph<'_>, findings: &mut Vec<Finding>) {
    for u in graph.units {
        for s in &u.parsed.structs {
            if !s.is_pub {
                continue;
            }
            let counters = counter_fields(s);
            if counters.is_empty() {
                continue;
            }
            let Some(folded) = graph.digest_idents(&s.name) else {
                continue; // no write_digest anywhere for this type
            };
            for (field, line) in counters {
                if !folded.contains(field) {
                    findings.push(Finding {
                        rule: RuleId::DigestCoverage,
                        file: u.rel_path.clone(),
                        line,
                        message: format!(
                            "pub counter `{}` is not folded into any {}::write_digest \
                             (searched every impl, all files); digests would miss changes \
                             to it",
                            field, s.name
                        ),
                    });
                }
            }
        }
    }
}

/// Is this file part of a shard engine? (`shard.rs`, `shard/…`.)
fn is_shard_scope(rel_path: &str) -> bool {
    rel_path
        .rsplit('/')
        .next()
        .is_some_and(|f| f.starts_with("shard"))
        || rel_path.contains("/shard/")
}

fn shard_safety(graph: &SymbolGraph<'_>, findings: &mut Vec<Finding>) {
    // Leader types across every shard-scope file: the structs that own
    // the `shards` vector. Their methods are the only sanctioned place
    // for cross-shard access (barrier drains, mailbox routing).
    let mut leaders = std::collections::BTreeSet::new();
    for u in prod_units(graph) {
        if is_shard_scope(&u.rel_path) {
            leaders.extend(graph.leader_structs(u));
        }
    }
    for u in prod_units(graph) {
        if !is_shard_scope(&u.rel_path) {
            continue;
        }
        for f in &u.parsed.fns {
            if u.in_cfg_test(f.line) {
                continue;
            }
            let body = u.body_tokens(f);
            let is_leader_fn = f.owner.as_deref().is_some_and(|o| leaders.contains(o));
            if !is_leader_fn {
                for t in body {
                    if ident(t) == Some("shards") {
                        findings.push(Finding {
                            rule: RuleId::ShardSafety,
                            file: u.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "`{}` touches the shard vector but is not a method of a \
                                 leader type (one owning `shards`); cross-shard state may \
                                 only move through the mailbox/barrier API",
                                f.name
                            ),
                        });
                    }
                }
            }
            // Mailbox-drain float accumulation: only the explicit fixed
            // (src, dst) loop order is deterministic across worker
            // counts; iterator folds hide the order.
            let drains_mailboxes = body
                .iter()
                .any(|t| matches!(ident(t), Some("outbox" | "mailbox" | "mailboxes")));
            if drains_mailboxes {
                for (line, acc) in float_acc_sites(body) {
                    findings.push(Finding {
                        rule: RuleId::ShardSafety,
                        file: u.rel_path.clone(),
                        line,
                        message: format!(
                            "float `{acc}` while draining shard mailboxes in `{}`; \
                             accumulate with an explicit fixed (src, dst) order loop \
                             instead of an iterator fold",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SymbolGraph;
    use crate::lexer::lex_full;
    use crate::parser::parse_file;

    fn unit(rel_path: &str, src: &str) -> Unit {
        let lexed = lex_full(src);
        let parsed = parse_file(&lexed.tokens);
        Unit { rel_path: rel_path.to_string(), lexed, parsed }
    }

    fn check(units: &[Unit]) -> Vec<Finding> {
        check_workspace(&SymbolGraph::build(units))
    }

    #[test]
    fn duplicate_label_values_across_files_fire() {
        let units = vec![
            unit("crates/a/src/lib.rs", "pub const FAULT_STREAM_LABEL: u64 = 0xFA17;\n"),
            unit("crates/b/src/lib.rs", "pub const CLOCK_STREAM_LABEL: u64 = 0xFA17;\n"),
        ];
        let f = check(&units);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::StreamDiscipline);
        assert_eq!(f[0].file, "crates/b/src/lib.rs");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn fork_with_label_offset_passes_and_magic_number_fires() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub const RACK_STREAM_BASE: u64 = 0x5AAD_0000;\n\
             fn ok(r: &DetRng, i: u64) { let _ = r.fork(RACK_STREAM_BASE + i); }\n\
             fn bad(r: &DetRng) { let _ = r.fork(42); }\n",
        )];
        let f = check(&units);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RuleId::StreamDiscipline, 3));
    }

    #[test]
    fn cross_file_digest_fold_counts_as_coverage() {
        let units = vec![
            unit(
                "crates/a/src/stats.rs",
                "pub struct S { pub sent: u64, pub lost: u64 }\n",
            ),
            unit(
                "crates/a/src/fold.rs",
                "impl S { pub fn write_digest(&self, d: &mut D) { d.u64(self.sent); } }\n",
            ),
        ];
        let f = check(&units);
        // `lost` is missing from every fold; `sent` is covered cross-file.
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RuleId::DigestCoverage, 1));
        assert!(f[0].message.contains("lost"));
    }

    #[test]
    fn shard_mailbox_bypass_fires_for_non_leader() {
        let units = vec![unit(
            "crates/demo/src/shard.rs",
            "pub struct Leader { shards: Vec<Shard> }\n\
             impl Leader { fn drain(&mut self) { self.shards.len(); } }\n\
             impl Shard { fn cheat(&mut self, world: &mut Leader) { world.shards.clear(); } }\n",
        )];
        let f = check(&units);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RuleId::ShardSafety, 3));
        assert!(f[0].message.contains("cheat"));
    }
}
