//! Inline suppression directives.
//!
//! Syntax (inside any comment — `//` in Rust, `#` in Cargo.toml):
//!
//! ```text
//! // detlint: allow(rule_id) — reason the violation is acceptable
//! // detlint: allow(rule_a, rule_b) — one directive, several rules
//! ```
//!
//! A trailing directive suppresses matching findings on its own line; a
//! directive on a comment-only line suppresses the first code line
//! below its comment block (so a multi-line reason still reaches the
//! statement it annotates). The reason is **mandatory**: a directive
//! without one still suppresses its target — so the report points at
//! the real problem, the missing justification — but emits a
//! `bad_suppression` finding of its own, which fails the lint gate.
//!
//! v2 parses directives from *comment text only* (the lexer's
//! [`crate::lexer::Comment`] records for Rust, a quote-aware `#` scan
//! for TOML), never from raw lines: directive-shaped text inside a
//! string literal — which fixture tests embed on purpose — is inert.
//! v2 also counts how many findings each directive actually suppressed,
//! which feeds the `suppression_audit` workspace rule: a directive that
//! suppresses nothing is stale and becomes a finding itself.

use crate::lexer::Comment;
use crate::report::{Finding, RuleId};

/// One parsed `detlint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// 1-based line the directive suppresses: its own line for a
    /// trailing comment, otherwise the first code line after the
    /// comment block it belongs to (so a multi-line reason still
    /// reaches the statement below it).
    pub target_line: u32,
    /// Rule identifiers listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
}

const MARKER: &str = "detlint:";

/// Is this line nothing but a comment (or blank)? Used to let a
/// directive in a comment block reach past the rest of the block.
fn comment_only(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with("//") || t.starts_with('#') || t.starts_with("*")
}

/// Parse directives out of a file's comments. `src` is still needed for
/// the targeting walk (a standalone directive reaches the first code
/// line below its comment block).
pub fn parse_comments(src: &str, comments: &[Comment]) -> Vec<Directive> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text[pos + MARKER.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // Everything after `)` minus separator punctuation is the reason.
        let reason = body[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        let idx = (c.line as usize).saturating_sub(1);
        // A trailing comment suppresses its own line; a comment-only
        // line suppresses the first code line below the comment block.
        let target = if lines.get(idx).copied().map(comment_only).unwrap_or(true) {
            let mut j = idx + 1;
            while j < lines.len() && comment_only(lines[j]) {
                j += 1;
            }
            j as u32 + 1
        } else {
            c.line
        };
        out.push(Directive {
            line: c.line,
            target_line: target,
            rules,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Extract `#` comments from TOML, respecting basic strings so a `#`
/// inside `"…"` is not a comment opener.
pub fn toml_comments(src: &str) -> Vec<Comment> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let mut in_str = false;
        let mut prev_backslash = false;
        for (pos, ch) in raw.char_indices() {
            match ch {
                '"' if !prev_backslash => in_str = !in_str,
                '#' if !in_str => {
                    out.push(Comment {
                        line: idx as u32 + 1,
                        text: raw[pos..].to_string(),
                    });
                    break;
                }
                _ => {}
            }
            prev_backslash = ch == '\\' && !prev_backslash;
        }
    }
    out
}

/// Parse directives from raw source using TOML comment rules. Used for
/// `Cargo.toml` manifests; Rust sources go through [`parse_comments`]
/// with the lexer's comment records.
pub fn parse(src: &str) -> Vec<Directive> {
    parse_comments(src, &toml_comments(src))
}

/// The outcome of applying directives to one file's findings.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings that survived, plus a `bad_suppression` finding for
    /// every reasonless directive.
    pub kept: Vec<Finding>,
    /// The findings that were silenced (kept whole so the report can
    /// count suppressions per rule).
    pub suppressed: Vec<Finding>,
    /// How many findings each directive silenced, aligned with the
    /// input directive slice. Zero hits on a directive whose rules are
    /// all real is what `suppression_audit` flags as stale.
    pub hits: Vec<usize>,
}

/// Apply `directives` to `findings`, counting per-directive hits.
pub fn apply_counted(
    rel_path: &str,
    directives: &[Directive],
    findings: Vec<Finding>,
) -> Applied {
    let mut out = Applied {
        hits: vec![0usize; directives.len()],
        ..Applied::default()
    };
    for f in findings {
        let mut hit = false;
        for (di, d) in directives.iter().enumerate() {
            if (d.line == f.line || d.target_line == f.line)
                && d.rules.iter().any(|r| r == f.rule.id())
            {
                out.hits[di] += 1;
                hit = true;
            }
        }
        if hit {
            out.suppressed.push(f);
        } else {
            out.kept.push(f);
        }
    }
    for d in directives {
        if !d.has_reason {
            out.kept.push(Finding {
                rule: RuleId::BadSuppression,
                file: rel_path.to_string(),
                line: d.line,
                message: format!(
                    "suppression of {} has no reason; write `// detlint: allow({}) — why`",
                    d.rules.join(", "),
                    d.rules.join(", "),
                ),
            });
        }
    }
    out
}

/// Split `findings` into (kept, suppressed-count) under `directives`,
/// appending a `bad_suppression` finding for each reasonless directive.
pub fn apply(
    rel_path: &str,
    directives: &[Directive],
    findings: Vec<Finding>,
) -> (Vec<Finding>, usize) {
    let applied = apply_counted(rel_path, directives, findings);
    (applied.kept, applied.suppressed.len())
}

/// The stale-suppression audit: a directive whose listed rules are all
/// real (registered) yet silenced nothing can no longer fire in its
/// scope — the violation it justified is gone, so the allow must go
/// too. Directives naming an unknown rule are skipped: those are
/// documentation placeholders (`allow(rule_id)` in a doc comment), not
/// live suppressions.
pub fn audit(rel_path: &str, directives: &[Directive], applied: &Applied) -> Vec<Finding> {
    let mut out = Vec::new();
    for (di, d) in directives.iter().enumerate() {
        if applied.hits[di] > 0 || d.rules.is_empty() {
            continue;
        }
        if !d.rules.iter().all(|r| RuleId::from_id(r).is_some()) {
            continue;
        }
        out.push(Finding {
            rule: RuleId::SuppressionAudit,
            file: rel_path.to_string(),
            line: d.line,
            message: format!(
                "stale suppression: allow({}) silenced no finding — the violation it \
                 justified is gone, so remove the directive",
                d.rules.join(", "),
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_full;

    fn rust_directives(src: &str) -> Vec<Directive> {
        parse_comments(src, &lex_full(src).comments)
    }

    #[test]
    fn directive_inside_string_literal_is_inert() {
        let src = "let s = \"// detlint: allow(wall_clock) — fake\";\n";
        assert!(rust_directives(src).is_empty());
    }

    #[test]
    fn trailing_and_standalone_targets() {
        let src = "\
code(); // detlint: allow(wall_clock) — measured site
// detlint: allow(ambient_rng) — reason spans
// the next line too
below();
";
        let ds = rust_directives(src);
        assert_eq!(ds.len(), 2);
        assert_eq!((ds[0].line, ds[0].target_line), (1, 1));
        assert_eq!((ds[1].line, ds[1].target_line), (2, 4));
    }

    #[test]
    fn toml_hash_inside_string_is_not_a_comment() {
        let src = "name = \"has # detlint: allow(layer_deps) inside\"\n# detlint: allow(layer_deps) — real\n";
        let ds = parse(src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 2);
    }

    #[test]
    fn audit_flags_zero_hit_known_rules_only() {
        let src = "\
// detlint: allow(wall_clock) — nothing here uses clocks anymore
fine();
// doc example: write detlint: allow(rule_id) — why
";
        let ds = rust_directives(src);
        let applied = apply_counted("x.rs", &ds, Vec::new());
        let stale = audit("x.rs", &ds, &applied);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line, 1);
        assert_eq!(stale[0].rule, RuleId::SuppressionAudit);
    }
}
