//! Inline suppression directives.
//!
//! Syntax (inside any comment — `//` in Rust, `#` in Cargo.toml):
//!
//! ```text
//! // detlint: allow(rule_id) — reason the violation is acceptable
//! // detlint: allow(rule_a, rule_b) — one directive, several rules
//! ```
//!
//! A trailing directive suppresses matching findings on its own line; a
//! directive on a comment-only line suppresses the first code line
//! below its comment block (so a multi-line reason still reaches the
//! statement it annotates). The reason is **mandatory**: a directive
//! without one
//! still suppresses its target — so the report points at the real
//! problem, the missing justification — but emits a `bad_suppression`
//! finding of its own, which fails the lint gate.

use crate::report::{Finding, RuleId};

/// One parsed `detlint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// 1-based line the directive suppresses: its own line for a
    /// trailing comment, otherwise the first code line after the
    /// comment block it belongs to (so a multi-line reason still
    /// reaches the statement below it).
    pub target_line: u32,
    /// Rule identifiers listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
}

const MARKER: &str = "detlint:";

/// Is this line nothing but a comment (or blank)? Used to let a
/// directive in a comment block reach past the rest of the block.
fn comment_only(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with("//") || t.starts_with('#') || t.starts_with("*")
}

/// Scan raw source lines for directives. Line-based on purpose: the
/// directives live inside comments, which the token stream drops.
pub fn parse(src: &str) -> Vec<Directive> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let Some(pos) = raw.find(MARKER) else {
            continue;
        };
        let rest = raw[pos + MARKER.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // Everything after `)` minus separator punctuation is the reason.
        let reason = body[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        // A trailing comment suppresses its own line; a comment-only
        // line suppresses the first code line below the comment block.
        let target = if comment_only(raw) {
            let mut j = idx + 1;
            while j < lines.len() && comment_only(lines[j]) {
                j += 1;
            }
            j as u32 + 1
        } else {
            idx as u32 + 1
        };
        out.push(Directive {
            line: idx as u32 + 1,
            target_line: target,
            rules,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Split `findings` into (kept, suppressed-count) under `directives`,
/// appending a `bad_suppression` finding for each reasonless directive.
pub fn apply(
    rel_path: &str,
    directives: &[Directive],
    mut findings: Vec<Finding>,
) -> (Vec<Finding>, usize) {
    let mut suppressed = 0usize;
    findings.retain(|f| {
        let hit = directives.iter().any(|d| {
            (d.line == f.line || d.target_line == f.line)
                && d.rules.iter().any(|r| r == f.rule.id())
        });
        if hit {
            suppressed += 1;
        }
        !hit
    });
    for d in directives {
        if !d.has_reason {
            findings.push(Finding {
                rule: RuleId::BadSuppression,
                file: rel_path.to_string(),
                line: d.line,
                message: format!(
                    "suppression of {} has no reason; write `// detlint: allow({}) — why`",
                    d.rules.join(", "),
                    d.rules.join(", "),
                ),
            });
        }
    }
    (findings, suppressed)
}
