//! A lightweight item-level parser on top of the lexer.
//!
//! This is not a Rust grammar: it recognizes just the item skeleton the
//! workspace rules need — `const`s (with literal values), `struct`s and
//! their fields, `impl` blocks (inherent and trait), `fn`s with their
//! body token spans, and `use` paths. Function bodies are *skipped* for
//! item collection (a body's statements never declare workspace-visible
//! symbols we check), and trait declaration blocks are skipped entirely
//! (only impls carry real fold code in this workspace). Everything the
//! parser does not understand degrades to "advance one token", so
//! malformed or exotic source can never abort a scan.
//!
//! Items carry token-index spans into the file's token vector so rules
//! can re-scan exactly the region they care about (a method body, a
//! const initializer) without re-lexing.

use crate::lexer::{Tok, Token};

/// A `const NAME: T = value;` item (module level or inside an impl).
#[derive(Debug, Clone)]
pub struct ConstInfo {
    /// Constant name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// The evaluated value when the initializer is a single integer
    /// literal (`0xFA17`, `1_000u64`); `None` for anything computed.
    pub value: Option<u64>,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Declared with `pub` (any visibility flavor).
    pub is_pub: bool,
    /// First identifier of the field's type (`u64`, `Vec`, …).
    pub ty: String,
    /// The type is a single bare identifier (`u64`, not `Vec<u64>` or
    /// `[u64; 4]`) — what the digest-coverage counter criterion needs.
    pub ty_is_simple: bool,
}

/// A `struct` item with its named fields (tuple/unit structs keep an
/// empty field list).
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Declared `pub` (any visibility flavor).
    pub is_pub: bool,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldInfo>,
}

/// An `impl` block header: `impl Ty` or `impl Trait for Ty`.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// The implementing type (last path segment).
    pub ty: String,
    /// The trait being implemented, if any (last path segment).
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// A function, free or method. Methods record their impl's type.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// `Some(type)` when declared inside an `impl` block.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index span of the body: `(open, close)` indices of the
    /// braces, inclusive. `open == close` means no body (a signature).
    pub body: (usize, usize),
}

/// A `use` declaration, flattened to its identifier segments.
#[derive(Debug, Clone)]
pub struct UseInfo {
    /// Identifier segments in source order (`use a::b::{c, d}` yields
    /// `[a, b, c, d]`).
    pub segments: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// Item skeleton of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Module-level and impl-level constants.
    pub consts: Vec<ConstInfo>,
    /// Struct declarations.
    pub structs: Vec<StructInfo>,
    /// Impl block headers.
    pub impls: Vec<ImplInfo>,
    /// All functions (free and methods), flattened.
    pub fns: Vec<FnInfo>,
    /// Use declarations.
    pub uses: Vec<UseInfo>,
    /// Line of the first `#[cfg(test)]` attribute; everything at or
    /// after it is treated as test code (same convention as the
    /// per-file rules).
    pub cfg_test_line: Option<u32>,
}

/// Parse the item skeleton from a token stream.
pub fn parse_file(toks: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(toks, 0, toks.len(), None, &mut out);
    out
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

/// From `i` at an opening delimiter, return the index just past its
/// matching closer. Tolerates truncation (returns `end`).
fn skip_balanced(toks: &[Token], mut i: usize, open: char, close: char, end: usize) -> usize {
    debug_assert!(punct_at(toks, i, open));
    let mut depth = 0usize;
    while i < end {
        if punct_at(toks, i, open) {
            depth += 1;
        } else if punct_at(toks, i, close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Advance past one `#[...]` or `#![...]` attribute starting at `i`
/// (the `#`). Records `#[cfg(test)]` in `out`.
fn skip_attr(toks: &[Token], mut i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let attr_start = i;
    i += 1;
    if punct_at(toks, i, '!') {
        i += 1;
    }
    if !punct_at(toks, i, '[') {
        return i;
    }
    let close = skip_balanced(toks, i, '[', ']', end);
    if ident_at(toks, i + 1) == Some("cfg")
        && punct_at(toks, i + 2, '(')
        && ident_at(toks, i + 3) == Some("test")
        && out.cfg_test_line.is_none()
    {
        out.cfg_test_line = Some(toks[attr_start].line);
    }
    close
}

/// Parse items in `toks[i..end]`. `owner` is the enclosing impl's type
/// name, if any.
fn parse_items(
    toks: &[Token],
    mut i: usize,
    end: usize,
    owner: Option<&str>,
    out: &mut ParsedFile,
) {
    while i < end {
        if punct_at(toks, i, '#') {
            i = skip_attr(toks, i, end, out);
            continue;
        }
        let Some(word) = ident_at(toks, i) else {
            // A stray delimiter at item level (extern blocks, macro
            // bodies we fell into) — skip it wholesale so its contents
            // are not misread as items.
            if punct_at(toks, i, '{') {
                i = skip_balanced(toks, i, '{', '}', end);
            } else {
                i += 1;
            }
            continue;
        };
        match word {
            // `const fn` / `const unsafe fn` are functions, not consts —
            // step over the qualifier and let the `fn` arm handle them.
            "const" | "static"
                if matches!(
                    ident_at(toks, i + 1),
                    Some("fn") | Some("unsafe") | Some("extern") | Some("async") | Some("mut")
                ) =>
            {
                i += 1
            }
            "const" | "static" => i = parse_const(toks, i, end, out),
            "struct" => i = parse_struct(toks, i, end, out),
            "enum" | "union" => i = skip_named_block(toks, i, end),
            "trait" => i = skip_named_block(toks, i, end),
            "impl" => i = parse_impl(toks, i, end, out),
            "fn" => i = parse_fn(toks, i, end, owner, out),
            "mod" => {
                // `mod name;` or `mod name { items }` — recurse into the
                // body; the enclosing impl owner cannot cross a module
                // boundary.
                let mut j = i + 1;
                while j < end && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                    j += 1;
                }
                if punct_at(toks, j, '{') {
                    let close = skip_balanced(toks, j, '{', '}', end);
                    parse_items(toks, j + 1, close.saturating_sub(1), None, out);
                    i = close;
                } else {
                    i = j + 1;
                }
            }
            "use" => {
                let line = toks[i].line;
                let mut segments = Vec::new();
                let mut j = i + 1;
                while j < end && !punct_at(toks, j, ';') {
                    if let Some(s) = ident_at(toks, j) {
                        segments.push(s.to_string());
                    }
                    j += 1;
                }
                out.uses.push(UseInfo { segments, line });
                i = j + 1;
            }
            "macro_rules" => {
                // macro_rules! name { arbitrary token trees } — the body
                // would badly confuse item parsing, skip it whole.
                i = skip_named_block(toks, i, end);
            }
            _ => i += 1,
        }
    }
}

/// Skip `keyword Name … { … }` or `keyword Name …;` without looking
/// inside (enums, unions, traits, macro_rules).
fn skip_named_block(toks: &[Token], mut i: usize, end: usize) -> usize {
    while i < end && !punct_at(toks, i, '{') && !punct_at(toks, i, ';') {
        // Generic parameter lists can contain braces in const-generic
        // defaults; skip them balanced.
        if punct_at(toks, i, '<') {
            i = skip_balanced(toks, i, '<', '>', end);
        } else {
            i += 1;
        }
    }
    if punct_at(toks, i, '{') {
        skip_balanced(toks, i, '{', '}', end)
    } else {
        (i + 1).min(end)
    }
}

/// Parse a single integer literal's value: `0xFA17`, `1_000u64`,
/// `0b1010`, plain decimal. `None` for anything else.
fn int_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(d) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (16, d)
    } else if let Some(d) = t.strip_prefix("0o") {
        (8, d)
    } else if let Some(d) = t.strip_prefix("0b") {
        (2, d)
    } else {
        (10, t.as_str())
    };
    // Strip a type suffix (u64, usize, i32 …): digits up to the first
    // char that is not valid in this radix.
    let valid = |c: char| c.is_digit(radix);
    let end = digits.find(|c| !valid(c)).unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() {
        return None;
    }
    // A real suffix starts with u/i; anything else (e.g. the `e` of a
    // float exponent) means this was not an integer literal.
    if !suffix.is_empty() && !suffix.starts_with('u') && !suffix.starts_with('i') {
        return None;
    }
    u64::from_str_radix(num, radix).ok()
}

fn parse_const(toks: &[Token], i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name) = ident_at(toks, i + 1) else {
        return i + 1;
    };
    let line = toks[i + 1].line;
    let name = name.to_string();
    // Find `=` at delimiter depth 0, then collect initializer tokens to
    // the closing `;`.
    let mut j = i + 2;
    while j < end && !punct_at(toks, j, '=') && !punct_at(toks, j, ';') {
        if punct_at(toks, j, '<') {
            j = skip_balanced(toks, j, '<', '>', end);
        } else if punct_at(toks, j, '[') {
            j = skip_balanced(toks, j, '[', ']', end);
        } else {
            j += 1;
        }
    }
    if !punct_at(toks, j, '=') {
        out.consts.push(ConstInfo { name, line, value: None });
        return (j + 1).min(end);
    }
    let init_start = j + 1;
    let mut k = init_start;
    while k < end && !punct_at(toks, k, ';') {
        if punct_at(toks, k, '{') {
            k = skip_balanced(toks, k, '{', '}', end);
        } else if punct_at(toks, k, '(') {
            k = skip_balanced(toks, k, '(', ')', end);
        } else if punct_at(toks, k, '[') {
            k = skip_balanced(toks, k, '[', ']', end);
        } else {
            k += 1;
        }
    }
    let value = match &toks[init_start..k] {
        [Token { kind: Tok::IntLit(text), .. }] => int_value(text),
        _ => None,
    };
    out.consts.push(ConstInfo { name, line, value });
    (k + 1).min(end)
}

fn parse_struct(toks: &[Token], i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name) = ident_at(toks, i + 1) else {
        return i + 1;
    };
    let line = toks[i + 1].line;
    let name = name.to_string();
    // Visibility sits just before `struct`: `pub struct` or
    // `pub(crate) struct` / `pub(super) struct`.
    let is_pub = i >= 1 && ident_at(toks, i - 1) == Some("pub")
        || i >= 4
            && punct_at(toks, i - 1, ')')
            && punct_at(toks, i - 3, '(')
            && ident_at(toks, i - 4) == Some("pub");
    let mut j = i + 2;
    if punct_at(toks, j, '<') {
        j = skip_balanced(toks, j, '<', '>', end);
    }
    // Skip a where clause up to the body/terminator.
    while j < end && !punct_at(toks, j, '{') && !punct_at(toks, j, '(') && !punct_at(toks, j, ';') {
        j += 1;
    }
    let mut fields = Vec::new();
    let next = if punct_at(toks, j, '{') {
        let close = skip_balanced(toks, j, '{', '}', end);
        parse_fields(toks, j + 1, close.saturating_sub(1), &mut fields);
        close
    } else if punct_at(toks, j, '(') {
        // Tuple struct — unnamed fields, then `;`.
        let close = skip_balanced(toks, j, '(', ')', end);
        (close + 1).min(end)
    } else {
        (j + 1).min(end)
    };
    out.structs.push(StructInfo { name, line, is_pub, fields });
    next
}

/// Parse `pub? name: Type,` fields in `toks[i..end]` (inside the struct
/// braces).
fn parse_fields(toks: &[Token], mut i: usize, end: usize, out: &mut Vec<FieldInfo>) {
    while i < end {
        // Skip attributes on the field.
        if punct_at(toks, i, '#') {
            i += 1;
            if punct_at(toks, i, '[') {
                i = skip_balanced(toks, i, '[', ']', end);
            }
            continue;
        }
        let mut is_pub = false;
        if ident_at(toks, i) == Some("pub") {
            is_pub = true;
            i += 1;
            if punct_at(toks, i, '(') {
                // pub(crate), pub(super), …
                i = skip_balanced(toks, i, '(', ')', end);
            }
        }
        let Some(fname) = ident_at(toks, i) else {
            i += 1;
            continue;
        };
        if !punct_at(toks, i + 1, ':') {
            i += 1;
            continue;
        }
        let fline = toks[i].line;
        let fname = fname.to_string();
        // The type runs to the next `,` at depth 0; its first identifier
        // names the head type.
        let mut j = i + 2;
        let mut ty = String::new();
        let mut ty_tokens = 0usize;
        while j < end && !punct_at(toks, j, ',') {
            if ty.is_empty() {
                if let Some(t) = ident_at(toks, j) {
                    ty = t.to_string();
                }
            }
            ty_tokens += 1;
            if punct_at(toks, j, '<') {
                j = skip_balanced(toks, j, '<', '>', end);
            } else if punct_at(toks, j, '(') {
                j = skip_balanced(toks, j, '(', ')', end);
            } else if punct_at(toks, j, '[') {
                j = skip_balanced(toks, j, '[', ']', end);
            } else {
                j += 1;
            }
        }
        let ty_is_simple = ty_tokens == 1 && !ty.is_empty();
        out.push(FieldInfo { name: fname, line: fline, is_pub, ty, ty_is_simple });
        i = (j + 1).min(end);
    }
}

fn parse_impl(toks: &[Token], i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let line = toks[i].line;
    let mut j = i + 1;
    if punct_at(toks, j, '<') {
        j = skip_balanced(toks, j, '<', '>', end);
    }
    // First path: trait in `impl Trait for Ty`, or the type itself.
    let mut first_last = String::new();
    let mut second_last = String::new();
    let mut saw_for = false;
    while j < end && !punct_at(toks, j, '{') {
        if let Some(s) = ident_at(toks, j) {
            if s == "for" {
                saw_for = true;
                j += 1;
                continue;
            }
            if s == "where" {
                // Bounds until the body — no more path segments.
                while j < end && !punct_at(toks, j, '{') {
                    if punct_at(toks, j, '<') {
                        j = skip_balanced(toks, j, '<', '>', end);
                    } else {
                        j += 1;
                    }
                }
                break;
            }
            if saw_for {
                second_last = s.to_string();
            } else {
                first_last = s.to_string();
            }
            j += 1;
            continue;
        }
        if punct_at(toks, j, '<') {
            j = skip_balanced(toks, j, '<', '>', end);
        } else if punct_at(toks, j, '(') {
            j = skip_balanced(toks, j, '(', ')', end);
        } else {
            j += 1;
        }
    }
    let (ty, trait_name) = if saw_for {
        (second_last, Some(first_last))
    } else {
        (first_last, None)
    };
    if !punct_at(toks, j, '{') {
        return (j + 1).min(end);
    }
    let close = skip_balanced(toks, j, '{', '}', end);
    if !ty.is_empty() {
        parse_items(toks, j + 1, close.saturating_sub(1), Some(&ty), out);
        out.impls.push(ImplInfo { ty, trait_name, line });
    }
    close
}

fn parse_fn(
    toks: &[Token],
    i: usize,
    end: usize,
    owner: Option<&str>,
    out: &mut ParsedFile,
) -> usize {
    let Some(name) = ident_at(toks, i + 1) else {
        return i + 1;
    };
    let line = toks[i].line;
    let name = name.to_string();
    // Scan the signature for the body `{` at delimiter depth 0. `->`
    // lexes as two puncts; the stray `>` is ignored because angle depth
    // never goes negative.
    let mut j = i + 2;
    let mut angle = 0usize;
    let mut paren = 0usize;
    while j < end {
        match toks[j].kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren = paren.saturating_sub(1),
            Tok::Punct('{') if angle == 0 && paren == 0 => break,
            Tok::Punct(';') if angle == 0 && paren == 0 => {
                // Signature only (trait method, extern) — no body.
                out.fns.push(FnInfo {
                    name,
                    owner: owner.map(str::to_string),
                    line,
                    body: (j, j),
                });
                return j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = skip_balanced(toks, j, '{', '}', end);
    out.fns.push(FnInfo {
        name,
        owner: owner.map(str::to_string),
        line,
        body: (j, close.saturating_sub(1)),
    });
    close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn consts_with_literal_values() {
        let p = parse(
            "pub const FAULT_STREAM_LABEL: u64 = 0xFA17;\n\
             const COMPUTED: u64 = BASE + 1;\n\
             const SUFFIXED: u64 = 1_000u64;\n",
        );
        assert_eq!(p.consts.len(), 3);
        assert_eq!(p.consts[0].name, "FAULT_STREAM_LABEL");
        assert_eq!(p.consts[0].value, Some(0xFA17));
        assert_eq!(p.consts[1].value, None);
        assert_eq!(p.consts[2].value, Some(1000));
    }

    #[test]
    fn struct_fields_and_visibility() {
        let p = parse(
            "pub struct Stats {\n\
                 pub delivered: u64,\n\
                 pub(crate) drops: u32,\n\
                 inner: Vec<u8>,\n\
             }\n\
             struct Private;\n",
        );
        let s = &p.structs[0];
        assert_eq!(s.name, "Stats");
        assert!(s.is_pub);
        assert!(!p.structs[1].is_pub);
        assert!(s.fields[0].ty_is_simple);
        assert!(!s.fields[2].ty_is_simple, "Vec<u8> is not a bare counter type");
        let f: Vec<(&str, bool, &str)> = s
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.ty.as_str()))
            .collect();
        assert_eq!(
            f,
            vec![
                ("delivered", true, "u64"),
                ("drops", true, "u32"),
                ("inner", false, "Vec"),
            ]
        );
    }

    #[test]
    fn impls_and_method_owners() {
        let p = parse(
            "impl Stats {\n\
                 pub fn write_digest(&self, d: &mut Digest) { d.u64(self.delivered); }\n\
             }\n\
             impl<T> InjectorStats for Wrapper<T> {\n\
                 fn write_digest(&self, d: &mut Digest) { self.inner.write_digest(d) }\n\
             }\n",
        );
        assert_eq!(p.impls.len(), 2);
        assert_eq!(p.impls[0].ty, "Stats");
        assert_eq!(p.impls[0].trait_name, None);
        assert_eq!(p.impls[1].ty, "Wrapper");
        assert_eq!(p.impls[1].trait_name.as_deref(), Some("InjectorStats"));
        let owners: Vec<Option<&str>> = p.fns.iter().map(|f| f.owner.as_deref()).collect();
        assert_eq!(owners, vec![Some("Stats"), Some("Wrapper")]);
    }

    #[test]
    fn fn_bodies_are_spanned_not_recursed() {
        let src = "fn outer() {\n    const INNER: u64 = 3;\n    let x = 1;\n}\nfn after() {}\n";
        let p = parse(src);
        assert_eq!(p.consts.len(), 0, "body consts are not items");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "outer");
        assert_eq!(p.fns[1].name, "after");
        assert!(p.fns[0].body.0 < p.fns[0].body.1);
    }

    #[test]
    fn nested_generic_signatures_find_their_body() {
        let p = parse(
            "fn collect<T: Iterator<Item = Vec<u8>>>(it: T) -> Vec<Vec<u8>> { it.collect() }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.0 < p.fns[0].body.1);
    }

    #[test]
    fn mods_recurse_and_cfg_test_is_recorded() {
        let src = "\
mod inner {
    pub const A: u64 = 1;
}
#[cfg(test)]
mod tests {
    fn t() {}
}
";
        let p = parse(src);
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.cfg_test_line, Some(4));
        // The test fn is still recorded; rules decide what test scope means.
        assert_eq!(p.fns.len(), 1);
    }

    #[test]
    fn use_paths_flatten() {
        let p = parse("use crate::shard::{RackShard, OutMsg};\n");
        assert_eq!(
            p.uses[0].segments,
            vec!["crate", "shard", "RackShard", "OutMsg"]
        );
    }
}
