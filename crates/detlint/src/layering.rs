//! Crate-layering rule: the workspace dependency DAG, machine-checked.
//!
//! The layering mirrors the stack the paper separates by construction
//! (NoCC-style separation of concerns): byte formats at the bottom, the
//! deterministic kernel above them, transports above that, the network
//! substrate above transports, and the experiment harness on top.
//!
//! ```text
//! testkit            (leaf: test infrastructure, no deps)
//! wire               (leaf: byte formats)
//! simcore  -> testkit
//! tcp      -> simcore, wire, testkit
//! tdtcp    -> simcore, wire, tcp            (core/)
//! mptcp    -> simcore, wire, tcp
//! rdcn     -> simcore, wire, tcp, testkit
//! bench    -> everything below it
//! detlint            (leaf: must stay outside the stack it polices)
//! ```
//!
//! Transports (`tcp`/`tdtcp`/`mptcp`) must never see the network
//! substrate (`rdcn`) or the harness (`bench`); nothing may depend on
//! `bench` or `detlint`. Any dependency not in the workspace at all is
//! a registry dependency and violates the PR-1 offline-build guarantee.
//! Dev-dependencies are looser (tests may look up the stack — e.g.
//! `tdtcp` dev-depends on `rdcn` to drive an emulator), but the two
//! top-of-stack crates stay unreachable even there.

use crate::report::{Finding, RuleId};
use crate::suppress;

/// Allowed `[dependencies]` per workspace package (package name, not
/// directory name: `crates/core` is the `tdtcp` package).
const LAYERS: &[(&str, &[&str])] = &[
    ("testkit", &[]),
    ("wire", &[]),
    ("simcore", &["testkit"]),
    ("tcp", &["simcore", "wire", "testkit"]),
    ("tdtcp", &["simcore", "wire", "tcp"]),
    ("mptcp", &["simcore", "wire", "tcp"]),
    ("rdcn", &["simcore", "wire", "tcp", "testkit"]),
    (
        "bench",
        &["simcore", "wire", "rdcn", "tcp", "tdtcp", "mptcp", "testkit"],
    ),
    ("detlint", &[]),
    // The workspace-root package: examples + integration tests over the
    // whole stack.
    (
        "tdtcp-repro",
        &["simcore", "wire", "rdcn", "tcp", "tdtcp", "mptcp", "testkit", "bench"],
    ),
];

/// May `package` depend on `dep` at all (normal or dev)? `detlint`
/// must stay outside the stack it polices; `bench` is top-of-stack for
/// every crate except the workspace-root package that re-exports it.
fn never_depended_on(package: &str, dep: &str) -> bool {
    dep == "detlint" || (dep == "bench" && package != "tdtcp-repro")
}

/// Check one `Cargo.toml`. Returns (unsuppressed findings, suppressed
/// count); an `allow(layer_deps)` suppression (a `detlint:` comment
/// directive with a reason) works on the offending dependency line like
/// any other directive.
pub fn check_manifest(rel_path: &str, contents: &str) -> (Vec<Finding>, usize) {
    let findings = check_manifest_raw(rel_path, contents);
    let directives = suppress::parse(contents);
    suppress::apply(rel_path, &directives, findings)
}

/// The layering checks alone, before suppression — the workspace
/// analyzer applies directives centrally so the stale-suppression audit
/// sees every hit count.
pub fn check_manifest_raw(rel_path: &str, contents: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    let mut package: Option<String> = None;

    // First pass: the package name.
    for line in contents.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            section = t.to_string();
        } else if section == "[package]" {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start().trim_start_matches('=').trim();
                package = Some(rest.trim_matches('"').to_string());
            }
        }
    }
    let Some(package) = package else {
        // A virtual manifest (workspace-only) declares no package and
        // has no dependency sections of its own to check.
        return findings;
    };
    let allowed: Option<&[&str]> = LAYERS
        .iter()
        .find(|(name, _)| *name == package)
        .map(|(_, deps)| *deps);
    let workspace_names: Vec<&str> = LAYERS.iter().map(|(n, _)| *n).collect();

    // Second pass: dependency sections. Only exact `[dependencies]` /
    // `[dev-dependencies]` count — `[workspace.dependencies]` is the
    // shared version table, not an edge in the graph.
    section.clear();
    for (idx, line) in contents.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let t = line.trim();
        if t.starts_with('[') {
            section = t.to_string();
            continue;
        }
        let dev = section == "[dev-dependencies]";
        if !(dev || section == "[dependencies]") {
            continue;
        }
        let Some(dep) = dep_name(t) else { continue };
        if !workspace_names.contains(&dep.as_str()) {
            findings.push(Finding {
                rule: RuleId::LayerDeps,
                file: rel_path.to_string(),
                line: lineno,
                message: format!(
                    "`{package}` pulls registry dependency `{dep}`; the workspace builds \
                     offline against an empty registry — stub or gate instead"
                ),
            });
            continue;
        }
        if never_depended_on(&package, &dep) {
            findings.push(Finding {
                rule: RuleId::LayerDeps,
                file: rel_path.to_string(),
                line: lineno,
                message: format!(
                    "`{package}` depends on `{dep}`, which sits at the top of the stack and \
                     must not be depended on"
                ),
            });
            continue;
        }
        if !dev {
            if let Some(allowed) = allowed {
                if !allowed.contains(&dep.as_str()) {
                    findings.push(Finding {
                        rule: RuleId::LayerDeps,
                        file: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "`{package}` -> `{dep}` violates the crate layering DAG \
                             (allowed: {})",
                            if allowed.is_empty() {
                                "none — leaf crate".to_string()
                            } else {
                                allowed.join(", ")
                            }
                        ),
                    });
                }
            }
        }
    }

    findings
}

/// Parse the dependency name from a manifest line like
/// `foo.workspace = true`, `foo = { path = "…" }`, or `foo = "1.0"`.
fn dep_name(line: &str) -> Option<String> {
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let key = line.split('=').next()?.trim();
    if key.is_empty() {
        return None;
    }
    let name = key.split('.').next()?.trim();
    let valid = name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    (valid && !name.is_empty()).then(|| name.to_string())
}
