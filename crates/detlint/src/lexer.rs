//! A small Rust lexer: just enough of the language to tokenize real
//! source reliably — line/block comments (nested), string literals with
//! escapes, raw and byte strings with arbitrary `#` guards, raw
//! identifiers, and the `'a`-lifetime vs `'x'`-char-literal ambiguity.
//!
//! The rule engine works on the identifier/punctuation stream this
//! produces, so anything inside a comment or string literal can never
//! trigger (or suppress) a finding at the token level. Comments are not
//! merely dropped, though: [`lex_full`] returns them as per-line
//! [`Comment`] records so [`crate::suppress`] can parse `detlint:`
//! directives from *actual* comment text — directive-shaped strings in
//! test source (fixture literals and the like) can no longer masquerade
//! as suppressions.

/// What a token is. Literal payloads are dropped except where a rule
/// needs them (identifier names, integer literal text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword, including raw identifiers (`r#type` yields
    /// `type`).
    Ident(String),
    /// A lifetime such as `'a` or `'_` (name without the quote).
    Lifetime(String),
    /// A character or byte literal (`'x'`, `'\n'`, `b'x'`).
    CharLit,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    StrLit,
    /// An integer-ish literal (`7`, `0x5f5f`, `1_000u64`). Float parts
    /// lex as separate pieces; the rules only care that a numeric
    /// literal is present at all.
    IntLit(String),
    /// Any other single character of punctuation.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One physical line of comment text. Multi-line block comments are
/// split into one record per line so suppression directives keep their
/// exact source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line this comment text appears on.
    pub line: u32,
    /// The comment text for this line, including the `//` / `/*`
    /// opener where it appears on this line.
    pub text: String,
}

/// Tokens plus comments for one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comment text, one record per physical comment line.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, dropping comments. See [`lex_full`] when the
/// comment text matters (suppression parsing).
pub fn lex(src: &str) -> Vec<Token> {
    lex_full(src).tokens
}

/// Tokenize `src`, returning both the token stream and every comment.
/// The lexer never fails: malformed input degrades to punctuation
/// tokens rather than an error, which is the right posture for a linter
/// that must keep scanning the rest of the file.
pub fn lex_full(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        // Newlines and other whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment — Rust block comments nest. Emitted as one
        // Comment record per physical line so directives inside keep
        // their exact source line.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            for (off, part) in text.split('\n').enumerate() {
                comments.push(Comment {
                    line: start_line + off as u32,
                    text: part.to_string(),
                });
            }
            continue;
        }
        // Ordinary string literal.
        if c == '"' {
            let start = line;
            i = skip_cooked_string(&b, i + 1, &mut line);
            out.push(Token { kind: Tok::StrLit, line: start });
            continue;
        }
        // r / b / br prefixes: raw strings, byte strings, byte chars,
        // raw identifiers — or just an identifier that starts with r/b.
        if c == 'r' || c == 'b' {
            if let Some((tok, next)) = lex_prefixed(&b, i, &mut line) {
                let start_line = tok.1;
                out.push(Token { kind: tok.0, line: start_line });
                i = next;
                continue;
            }
            // Fall through to identifier handling.
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let start = line;
            match classify_quote(&b, i) {
                Quote::Char(next) => {
                    // A char literal can contain a newline escape but not a
                    // raw newline; no line tracking needed inside.
                    out.push(Token { kind: Tok::CharLit, line: start });
                    i = next;
                }
                Quote::Lifetime(len) => {
                    let name: String = b[i + 1..i + 1 + len].iter().collect();
                    out.push(Token { kind: Tok::Lifetime(name), line: start });
                    i += 1 + len;
                }
                Quote::Lone => {
                    out.push(Token { kind: Tok::Punct('\''), line: start });
                    i += 1;
                }
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            let name: String = b[start..i].iter().collect();
            out.push(Token { kind: Tok::Ident(name), line });
            continue;
        }
        // Numeric literal: digits plus alphanumeric suffix/base chars
        // (0x5f5f, 1_000u64). Dots are left as punctuation; the rules
        // only need "a numeric literal occurs here".
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            out.push(Token { kind: Tok::IntLit(text), line });
            continue;
        }
        out.push(Token { kind: Tok::Punct(c), line });
        i += 1;
    }
    Lexed { tokens: out, comments }
}

/// Skip a cooked (escapable) string body starting just after the opening
/// quote; returns the index just past the closing quote.
fn skip_cooked_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            '\\' => {
                // Skip the escaped character — which can itself be a
                // newline (string line-continuation).
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Try to lex an `r`/`b`/`br`-prefixed literal or raw identifier at `i`.
/// Returns `Some(((kind, start_line), next_index))`, or `None` when the
/// prefix is just the start of an ordinary identifier (`radius`, `bytes`).
#[allow(clippy::type_complexity)]
fn lex_prefixed(b: &[char], i: usize, line: &mut u32) -> Option<((Tok, u32), usize)> {
    let start_line = *line;
    // b'x' — byte char literal. Never a lifetime.
    if b[i] == 'b' && b.get(i + 1) == Some(&'\'') {
        let mut j = i + 2;
        if b.get(j) == Some(&'\\') {
            j += 2;
        } else {
            j += 1;
        }
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return Some(((Tok::CharLit, start_line), (j + 1).min(b.len())));
    }
    // b"…" — byte string with escapes.
    if b[i] == 'b' && b.get(i + 1) == Some(&'"') {
        let next = skip_cooked_string(b, i + 2, line);
        return Some(((Tok::StrLit, start_line), next));
    }
    // r#ident — raw identifier (exactly one '#', then ident start).
    if b[i] == 'r'
        && b.get(i + 1) == Some(&'#')
        && b.get(i + 2).is_some_and(|&c| is_ident_start(c))
    {
        let mut j = i + 2;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        let name: String = b[i + 2..j].iter().collect();
        return Some(((Tok::Ident(name), start_line), j));
    }
    // r"…", r#"…"#, br"…", br#"…"#, with any number of '#' guards.
    let hash_start = match (b[i], b.get(i + 1)) {
        ('r', _) => i + 1,
        ('b', Some(&'r')) => i + 2,
        _ => return None,
    };
    let mut hashes = 0usize;
    while b.get(hash_start + hashes) == Some(&'#') {
        hashes += 1;
    }
    if b.get(hash_start + hashes) != Some(&'"') {
        return None; // not a raw string after all — plain identifier
    }
    let mut j = hash_start + hashes + 1;
    // Scan for `"` followed by exactly `hashes` hash marks.
    while j < b.len() {
        if b[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == '"' {
            let mut k = 0usize;
            while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return Some(((Tok::StrLit, start_line), j + 1 + hashes));
            }
        }
        j += 1;
    }
    Some(((Tok::StrLit, start_line), j))
}

enum Quote {
    /// Char literal; payload is the index just past the closing quote.
    Char(usize),
    /// Lifetime; payload is the name length (after the quote).
    Lifetime(usize),
    /// A stray quote (macro land); treat as punctuation.
    Lone,
}

/// Disambiguate `'` at index `i`: `'x'` / `'\n'` are char literals,
/// `'a` / `'_` (not followed by a closing quote) are lifetimes.
fn classify_quote(b: &[char], i: usize) -> Quote {
    match b.get(i + 1) {
        // Escape sequence: always a char literal. Scan to the closing
        // quote (handles '\u{1F600}' and friends).
        Some(&'\\') => {
            let mut j = i + 3; // skip quote, backslash, escaped char
            while j < b.len() && b[j] != '\'' {
                j += 1;
            }
            Quote::Char((j + 1).min(b.len()))
        }
        Some(&c) if is_ident_start(c) || c.is_ascii_digit() => {
            // 'x' — a char literal iff the very next char closes it.
            if b.get(i + 2) == Some(&'\'') {
                Quote::Char(i + 3)
            } else if is_ident_start(c) {
                let mut len = 1usize;
                while b
                    .get(i + 1 + len)
                    .is_some_and(|&c| is_ident_continue(c))
                {
                    len += 1;
                }
                Quote::Lifetime(len)
            } else {
                Quote::Lone
            }
        }
        // Non-identifier char literal like '(' or '"'.
        Some(_) if b.get(i + 2) == Some(&'\'') => Quote::Char(i + 3),
        _ => Quote::Lone,
    }
}

/// Convenience: the identifier text if this token is an identifier.
pub fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, u32)> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_hide_identifiers() {
        let ids = idents("// HashMap\n/* HashSet */ real");
        assert_eq!(ids, vec![("real".to_string(), 2)]);
    }

    #[test]
    fn strings_hide_identifiers_and_track_lines() {
        let ids = idents("let s = \"HashMap\nSystemTime\"; after");
        let names: Vec<&str> = ids.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(names, vec!["let", "s", "after"]);
        // `after` is on line 2 because the string spans a newline.
        assert_eq!(ids.last().unwrap().1, 2);
    }

    #[test]
    fn line_comments_are_captured_with_text_and_line() {
        let lexed = lex_full("a(); // first\nb(); // second");
        let got: Vec<(u32, &str)> = lexed
            .comments
            .iter()
            .map(|c| (c.line, c.text.as_str()))
            .collect();
        assert_eq!(got, vec![(1, "// first"), (2, "// second")]);
    }

    #[test]
    fn block_comments_split_per_line() {
        let lexed = lex_full("/* one\n   two\n   three */ x");
        let lines: Vec<u32> = lexed.comments.iter().map(|c| c.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
        assert!(lexed.comments[1].text.contains("two"));
        // The token after the block comment keeps the right line.
        assert_eq!(lexed.tokens.last().unwrap().line, 3);
    }

    #[test]
    fn directive_shaped_strings_are_not_comments() {
        let lexed = lex_full("let s = \"// detlint: allow(wall_clock)\";");
        assert!(lexed.comments.is_empty());
    }
}
