//! Findings, rule identifiers, and the human/JSON reports.

use std::fmt;

/// Version of the `target/detlint.json` schema. Bump when the shape of
/// the machine-readable report changes so downstream tooling can detect
/// which fields to expect. v1 (PR 5) had no version field; v2 adds
/// `schema`, per-rule counts, and the workspace (symbol-graph) rules.
pub const SCHEMA_VERSION: u32 = 2;

/// Every rule detlint knows. The `id()` string is both the report label
/// and the name used in `detlint: allow(...)` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in digest-adjacent code: iteration order is
    /// nondeterministic across runs/platforms.
    UnorderedIter,
    /// `Instant::now` / `SystemTime` outside annotated measurement sites.
    WallClock,
    /// Randomness not derived from a config seed / forked stream.
    AmbientRng,
    /// A crate depends on something its layer must not see.
    LayerDeps,
    /// A pub counter missing from its struct's `write_digest` fold
    /// (v2: the fold may live in any file, including trait impls).
    DigestCoverage,
    /// Float accumulation over a nondeterministically ordered source.
    DetFloatOrder,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// A `detlint: allow` directive without a written reason.
    BadSuppression,
    /// Workspace rule: `*_STREAM_LABEL`/`*_STREAM_BASE` constants must
    /// be workspace-unique and every non-test `fork(...)` call site must
    /// pass a declared label constant — no inline magic numbers.
    StreamDiscipline,
    /// Workspace rule: inside a `shard` module, cross-shard state may
    /// only be touched by the mailbox/barrier (leader) API, and float
    /// accumulation over mailbox drains must use explicit fixed-order
    /// loops.
    ShardSafety,
    /// Workspace rule: a `detlint: allow` whose rules can no longer fire
    /// in its scope is stale and must be removed — the allowlist only
    /// shrinks.
    SuppressionAudit,
}

impl RuleId {
    /// Every registered rule, in canonical (report) order. The fixture
    /// meta-test iterates this list, so adding a rule here without a
    /// firing fixture and a clean counterpart fails CI.
    pub const ALL: [RuleId; 11] = [
        RuleId::UnorderedIter,
        RuleId::WallClock,
        RuleId::AmbientRng,
        RuleId::LayerDeps,
        RuleId::DigestCoverage,
        RuleId::DetFloatOrder,
        RuleId::ForbidUnsafe,
        RuleId::BadSuppression,
        RuleId::StreamDiscipline,
        RuleId::ShardSafety,
        RuleId::SuppressionAudit,
    ];

    /// Canonical rule id — the name accepted by `allow(...)`.
    pub fn id(&self) -> &'static str {
        match self {
            RuleId::UnorderedIter => "unordered_iter",
            RuleId::WallClock => "wall_clock",
            RuleId::AmbientRng => "ambient_rng",
            RuleId::LayerDeps => "layer_deps",
            RuleId::DigestCoverage => "digest_coverage",
            RuleId::DetFloatOrder => "det_float_order",
            RuleId::ForbidUnsafe => "forbid_unsafe",
            RuleId::BadSuppression => "bad_suppression",
            RuleId::StreamDiscipline => "stream_discipline",
            RuleId::ShardSafety => "shard_safety",
            RuleId::SuppressionAudit => "suppression_audit",
        }
    }

    /// Look a rule up by its canonical id. Unknown names return `None`;
    /// the suppression audit uses this to ignore directive-shaped text
    /// whose "rule" is a documentation placeholder.
    pub fn from_id(id: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// Position of this rule in [`RuleId::ALL`] (indexes the per-rule
    /// count arrays).
    pub fn index(&self) -> usize {
        RuleId::ALL
            .iter()
            .position(|r| r == self)
            .expect("every RuleId is in ALL")
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by `detlint: allow` directives.
    pub suppressed: usize,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
    /// Workspace-relative paths of every scanned file, in scan order.
    /// Pins the scan set: the gate test asserts root `tests/`,
    /// `examples/`, and `crates/*/tests/` are covered.
    pub scanned: Vec<String>,
    /// Suppressed-finding count per rule, aligned with [`RuleId::ALL`].
    pub suppressed_by_rule: [usize; RuleId::ALL.len()],
}

impl Report {
    /// Sort findings into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// True when the gate should fail.
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// `(rule, unsuppressed findings, suppressed findings)` for every
    /// registered rule, in [`RuleId::ALL`] order.
    pub fn rule_counts(&self) -> Vec<(RuleId, usize, usize)> {
        RuleId::ALL
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let fired = self.findings.iter().filter(|f| f.rule == r).count();
                (r, fired, self.suppressed_by_rule[i])
            })
            .collect()
    }

    /// Render the human-readable report, ending with the per-rule
    /// finding/suppression counts `scripts/ci.sh lint` shows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.message
            ));
        }
        out.push_str(&format!(
            "detlint: {} finding{} ({} suppressed) across {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed,
            self.files_scanned,
        ));
        out.push_str("detlint: per-rule findings/suppressed:");
        for (rule, fired, supp) in self.rule_counts() {
            out.push_str(&format!(" {}={fired}/{supp}", rule.id()));
        }
        out.push('\n');
        out
    }

    /// Render the machine-readable report, mirroring the `BENCH_*.json`
    /// hand-rolled-JSON pattern (no serde; see the zero-dependency note
    /// in the crate manifest).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"tool\": \"detlint\",\n");
        out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"rules\": {\n");
        let counts = self.rule_counts();
        for (i, (rule, fired, supp)) in counts.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {{\"findings\": {fired}, \"suppressed\": {supp}}}{}\n",
                json_str(rule.id()),
                if i + 1 == counts.len() { "" } else { "," }
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            findings: vec![Finding {
                rule: RuleId::WallClock,
                file: "a \"b\".rs".into(),
                line: 3,
                message: "tab\there".into(),
            }],
            suppressed: 2,
            files_scanned: 5,
            ..Report::default()
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\"tool\": \"detlint\""));
        assert!(j.contains("\"schema\": 2"));
        assert!(j.contains("\"a \\\"b\\\".rs\""));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"suppressed\": 2"));
        assert!(j.contains("\"wall_clock\": {\"findings\": 1, \"suppressed\": 0}"));
    }

    #[test]
    fn every_rule_id_round_trips() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::from_id(r.id()), Some(r));
        }
        assert_eq!(RuleId::from_id("rule_id"), None, "doc placeholders are unknown");
    }

    #[test]
    fn render_includes_per_rule_counts() {
        let r = Report::default();
        let s = r.render();
        assert!(s.contains("per-rule findings/suppressed:"));
        assert!(s.contains("stream_discipline=0/0"));
    }
}
