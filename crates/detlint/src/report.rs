//! Findings, rule identifiers, and the human/JSON reports.

use std::fmt;

/// Every rule detlint knows. The `id()` string is both the report label
/// and the name used in `detlint: allow(...)` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in digest-adjacent code: iteration order is
    /// nondeterministic across runs/platforms.
    UnorderedIter,
    /// `Instant::now` / `SystemTime` outside annotated measurement sites.
    WallClock,
    /// Randomness not derived from a config seed / forked stream.
    AmbientRng,
    /// A crate depends on something its layer must not see.
    LayerDeps,
    /// A pub counter missing from its struct's `write_digest` fold.
    DigestCoverage,
    /// Float accumulation over a nondeterministically ordered source.
    DetFloatOrder,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// A `detlint: allow` directive without a written reason.
    BadSuppression,
}

impl RuleId {
    /// Canonical rule id — the name accepted by `allow(...)`.
    pub fn id(&self) -> &'static str {
        match self {
            RuleId::UnorderedIter => "unordered_iter",
            RuleId::WallClock => "wall_clock",
            RuleId::AmbientRng => "ambient_rng",
            RuleId::LayerDeps => "layer_deps",
            RuleId::DigestCoverage => "digest_coverage",
            RuleId::DetFloatOrder => "det_float_order",
            RuleId::ForbidUnsafe => "forbid_unsafe",
            RuleId::BadSuppression => "bad_suppression",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by `detlint: allow` directives.
    pub suppressed: usize,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
}

impl Report {
    /// Sort findings into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// True when the gate should fail.
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.message
            ));
        }
        out.push_str(&format!(
            "detlint: {} finding{} ({} suppressed) across {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed,
            self.files_scanned,
        ));
        out
    }

    /// Render the machine-readable report, mirroring the `BENCH_*.json`
    /// hand-rolled-JSON pattern (no serde; see the zero-dependency note
    /// in the crate manifest).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"tool\": \"detlint\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            findings: vec![Finding {
                rule: RuleId::WallClock,
                file: "a \"b\".rs".into(),
                line: 3,
                message: "tab\there".into(),
            }],
            suppressed: 2,
            files_scanned: 5,
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\"tool\": \"detlint\""));
        assert!(j.contains("\"a \\\"b\\\".rs\""));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"suppressed\": 2"));
    }
}
