//! # detlint — determinism & layering static analysis
//!
//! Every claim this reproduction makes rests on determinism *by
//! construction*: the golden-digest suite can only observe a violation
//! after the fact, and one `HashMap` iteration feeding a digest or one
//! stray wall-clock read silently breaks the parallel-vs-serial
//! bit-identical guarantee. detlint makes those rules machine-checked
//! at the source level, with zero dependencies (no `syn`, no registry
//! crates — the linter that polices the offline-build guarantee must
//! not break it).
//!
//! See `DESIGN.md` §10 for the rule set and suppression syntax; run it
//! via `scripts/ci.sh lint` or `cargo run -p detlint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layering;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

pub use report::{Finding, Report, RuleId};

use std::path::{Path, PathBuf};

/// Check one Rust source file (already read into memory). Returns
/// (unsuppressed findings, suppressed count). Public so fixture tests
/// can drive single files without a workspace on disk.
pub fn check_rust_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let tokens = lexer::lex(src);
    let ctx = rules::FileCtx {
        rel_path: rel_path.to_string(),
    };
    let findings = rules::check_file(&ctx, &tokens);
    let directives = suppress::parse(src);
    let (mut findings, suppressed) = suppress::apply(rel_path, &directives, findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    (findings, suppressed)
}

/// Scan a whole workspace rooted at `root`: every `.rs` file and every
/// `Cargo.toml`, skipping `target/`, VCS metadata, and detlint's own
/// rule fixtures (which exist to contain violations).
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort(); // deterministic report order regardless of readdir order

    let mut report = Report::default();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let (findings, suppressed) = if rel_str.ends_with("Cargo.toml") {
            layering::check_manifest(&rel_str, &src)
        } else {
            check_rust_source(&rel_str, &src)
        };
        report.findings.extend(findings);
        report.suppressed += suppressed;
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "tk-regressions"];

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
