//! # detlint — determinism & layering static analysis
//!
//! Every claim this reproduction makes rests on determinism *by
//! construction*: the golden-digest suite can only observe a violation
//! after the fact, and one `HashMap` iteration feeding a digest or one
//! stray wall-clock read silently breaks the parallel-vs-serial
//! bit-identical guarantee. detlint makes those rules machine-checked
//! at the source level, with zero dependencies (no `syn`, no registry
//! crates — the linter that polices the offline-build guarantee must
//! not break it).
//!
//! v2 pipeline (DESIGN.md §10): **lexer → item parser → symbol graph →
//! rules**. Per-file token rules run as before; on top, the parser
//! extracts each file's item skeleton, the [`graph::SymbolGraph`]
//! indexes it workspace-wide, and [`wsrules`] checks the cross-file
//! invariants the sharded engine depends on (stream-label uniqueness,
//! cross-file digest folds, mailbox-only shard access). Suppression is
//! applied per file after *all* rules, and audited: a directive that no
//! longer suppresses anything is itself a finding.
//!
//! See `DESIGN.md` §10 for the rule set and suppression syntax; run it
//! via `scripts/ci.sh lint` or `cargo run -p detlint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod layering;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod wsrules;

pub use report::{Finding, Report, RuleId};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One file to analyze, already read into memory. The analyzer never
/// touches the filesystem — [`collect_sources`] does the reading, so
/// benches and fixture tests can feed in-memory workspaces.
#[derive(Debug, Clone)]
pub struct Source {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// File contents.
    pub contents: String,
}

/// Check one Rust source file (already read into memory). Returns
/// (unsuppressed findings, suppressed count). Public so fixture tests
/// can drive single files without a workspace on disk. The file is
/// analyzed as a one-file workspace: the workspace rules run too, with
/// the symbol graph restricted to this file.
pub fn check_rust_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let report = analyze(&[Source {
        rel_path: rel_path.to_string(),
        contents: src.to_string(),
    }]);
    (report.findings, report.suppressed)
}

/// Analyze a set of sources as one workspace. This is the whole
/// pipeline: lex, parse items, run per-file rules, build the symbol
/// graph, run workspace rules, apply suppression per file, audit stale
/// suppressions.
pub fn analyze(sources: &[Source]) -> Report {
    // Per-file pass: findings before suppression, plus parsed units for
    // the graph.
    struct FileWork {
        rel_path: String,
        directives: Vec<suppress::Directive>,
        findings: Vec<Finding>,
    }
    let mut works: Vec<FileWork> = Vec::with_capacity(sources.len());
    let mut units: Vec<graph::Unit> = Vec::new();

    for s in sources {
        if s.rel_path.ends_with("Cargo.toml") {
            works.push(FileWork {
                rel_path: s.rel_path.clone(),
                directives: suppress::parse(&s.contents),
                findings: layering::check_manifest_raw(&s.rel_path, &s.contents),
            });
            continue;
        }
        let lexed = lexer::lex_full(&s.contents);
        let parsed = parser::parse_file(&lexed.tokens);
        let directives = suppress::parse_comments(&s.contents, &lexed.comments);
        let ctx = rules::FileCtx {
            rel_path: s.rel_path.clone(),
        };
        let findings = rules::check_file(&ctx, &lexed.tokens);
        works.push(FileWork {
            rel_path: s.rel_path.clone(),
            directives,
            findings,
        });
        units.push(graph::Unit {
            rel_path: s.rel_path.clone(),
            lexed,
            parsed,
        });
    }

    // Workspace pass: cross-file rules on the symbol graph, routed back
    // to each finding's file so its directives can suppress it.
    let symbol_graph = graph::SymbolGraph::build(&units);
    let by_path: BTreeMap<String, usize> = works
        .iter()
        .enumerate()
        .map(|(i, w)| (w.rel_path.clone(), i))
        .collect();
    for f in wsrules::check_workspace(&symbol_graph) {
        if let Some(&i) = by_path.get(f.file.as_str()) {
            works[i].findings.push(f);
        }
    }

    // Suppression + audit, per file.
    let mut report = Report::default();
    for w in &mut works {
        let applied =
            suppress::apply_counted(&w.rel_path, &w.directives, std::mem::take(&mut w.findings));
        let stale = suppress::audit(&w.rel_path, &w.directives, &applied);
        for f in &applied.suppressed {
            report.suppressed_by_rule[f.rule.index()] += 1;
        }
        report.suppressed += applied.suppressed.len();
        report.findings.extend(applied.kept);
        report.findings.extend(stale);
        report.files_scanned += 1;
        report.scanned.push(w.rel_path.clone());
    }
    report.sort();
    report
}

/// Read every `.rs` file and `Cargo.toml` under `root` into memory,
/// skipping `target/`, VCS metadata, and detlint's own rule fixtures
/// (which exist to contain violations). Sorted by path so reports are
/// independent of readdir order.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<Source>> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();
    files
        .iter()
        .map(|rel| {
            Ok(Source {
                rel_path: rel.to_string_lossy().replace('\\', "/"),
                contents: std::fs::read_to_string(root.join(rel))?,
            })
        })
        .collect()
}

/// Scan a whole workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    Ok(analyze(&collect_sources(root)?))
}

const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "tk-regressions"];

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
