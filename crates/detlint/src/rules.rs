//! The rule engine: token-stream rules over a single Rust source file.
//!
//! Rules implemented here (Cargo.toml layering lives in
//! [`crate::layering`]):
//!
//! * `unordered_iter` — no `HashMap`/`HashSet` in the workspace. Their
//!   iteration order is seeded per-process, so one stray iteration
//!   feeding a digest, a trace, or a test expectation silently breaks
//!   the bit-identical guarantee. Use `BTreeMap`/`BTreeSet` or keyed
//!   access; membership-only uses may be annotated.
//! * `wall_clock` — no `Instant::now` / `SystemTime` outside annotated
//!   measurement sites. Simulated time drives the simulator; wall time
//!   is only legitimate for perf reporting.
//! * `ambient_rng` — randomness must flow from `DetRng`/`TkRng` streams
//!   seeded by run config and forked with labels. Thread-local entropy
//!   is banned outright, and `DetRng::new`/`TkRng::new` with a numeric
//!   literal in the seed expression (ad-hoc seeding) is flagged outside
//!   test code.
//! * `forbid_unsafe` — every crate root must carry
//!   `#![forbid(unsafe_code)]`.
//! * `det_float_order` — float accumulation (`.sum::<f32/f64>()`,
//!   `.product::<…>()`, or a `fold` seeded with a float literal) inside
//!   a function that also touches a nondeterministically ordered source
//!   (`HashMap`/`HashSet` — even when its `unordered_iter` finding is
//!   annotated away as membership-only — `par_iter`-style parallel
//!   iteration, or `read_dir`). Float addition is not associative, so
//!   the same multiset of terms summed in two different orders can give
//!   two different digests; collect into an ordered `Vec` (or sort)
//!   before folding.
//!
//! `digest_coverage` moved to [`crate::wsrules`] in v2: the fold it
//! checks may now live in any file (statfold trait impls included), so
//! it runs on the workspace symbol graph rather than per file.

use crate::lexer::{ident, Tok, Token};
use crate::report::{Finding, RuleId};

/// Test-ish code by path: integration tests, benches, examples — both
/// the workspace-root directories and each crate's own.
pub(crate) fn is_test_path(p: &str) -> bool {
    p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
}

/// Facts about the file being checked that the rules need.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path (used in findings and path-based scoping).
    pub rel_path: String,
}

impl FileCtx {
    /// Test-ish code by path: integration tests, benches, examples.
    fn is_test_path(&self) -> bool {
        is_test_path(&self.rel_path)
    }

    /// A crate-root file that must carry `#![forbid(unsafe_code)]`.
    fn is_crate_root(&self) -> bool {
        let p = &self.rel_path;
        p.ends_with("src/lib.rs") || p.ends_with("src/main.rs") || {
            // Each file under src/bin/ is its own crate root.
            p.contains("src/bin/") && p.ends_with(".rs")
        }
    }
}

/// Run every source rule over one tokenized file.
pub fn check_file(ctx: &FileCtx, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Everything lexically after the first `#[cfg(test)]` is treated as
    // test code (unit-test modules sit at the end of a file by
    // convention in this workspace).
    let cfg_test_line = find_cfg_test(tokens);
    let in_test = |line: u32| {
        ctx.is_test_path() || cfg_test_line.is_some_and(|l| line >= l)
    };

    for (i, t) in tokens.iter().enumerate() {
        match ident(t) {
            Some("HashMap") | Some("HashSet") => findings.push(Finding {
                rule: RuleId::UnorderedIter,
                file: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{} iteration order is nondeterministic; use BTreeMap/BTreeSet or keyed \
                     access (annotate membership-only uses)",
                    ident(t).unwrap()
                ),
            }),
            Some("SystemTime") => findings.push(Finding {
                rule: RuleId::WallClock,
                file: ctx.rel_path.clone(),
                line: t.line,
                message: "SystemTime reads wall clock; simulated time must drive all behaviour"
                    .into(),
            }),
            Some("Instant") if is_path_call(tokens, i, "now") => findings.push(Finding {
                rule: RuleId::WallClock,
                file: ctx.rel_path.clone(),
                line: t.line,
                message: "Instant::now reads wall clock; only annotated measurement sites may"
                    .into(),
            }),
            Some(name @ ("thread_rng" | "from_entropy" | "OsRng" | "StdRng" | "SmallRng"
            | "ThreadRng")) => findings.push(Finding {
                rule: RuleId::AmbientRng,
                file: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{name}` draws ambient entropy; all randomness must come from a \
                     config-seeded DetRng/TkRng stream"
                ),
            }),
            Some("DetRng") | Some("TkRng")
                if !in_test(t.line) && literal_seed_arg(tokens, i) =>
            {
                findings.push(Finding {
                    rule: RuleId::AmbientRng,
                    file: ctx.rel_path.clone(),
                    line: t.line,
                    message: "ad-hoc RNG seeding (numeric literal in the seed expression); \
                              derive streams from the run seed via fork(LABEL) instead"
                        .into(),
                });
            }
            _ => {}
        }
    }

    if ctx.is_crate_root() && !has_forbid_unsafe(tokens) {
        findings.push(Finding {
            rule: RuleId::ForbidUnsafe,
            file: ctx.rel_path.clone(),
            line: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        });
    }

    findings.extend(det_float_order(ctx, tokens));
    findings
}

/// Line of the first `#[cfg(test)]` attribute, if any.
fn find_cfg_test(tokens: &[Token]) -> Option<u32> {
    tokens.windows(5).find_map(|w| {
        let shape = matches!(w[0].kind, Tok::Punct('#'))
            && matches!(w[1].kind, Tok::Punct('['))
            && ident(&w[2]) == Some("cfg")
            && matches!(w[3].kind, Tok::Punct('('))
            && ident(&w[4]) == Some("test");
        shape.then_some(w[0].line)
    })
}

/// Does `tokens[i]` start the path call `<ident>::<method>`?
fn is_path_call(tokens: &[Token], i: usize, method: &str) -> bool {
    matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct(':')))
        && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(Tok::Punct(':')))
        && tokens.get(i + 3).and_then(ident) == Some(method)
}

/// For `DetRng`/`TkRng` at `i`: is this `::new(...)` with a numeric
/// literal anywhere in the (balanced) argument expression?
fn literal_seed_arg(tokens: &[Token], i: usize) -> bool {
    if !is_path_call(tokens, i, "new") {
        return false;
    }
    let Some(open) = tokens.get(i + 4) else {
        return false;
    };
    if !matches!(open.kind, Tok::Punct('(')) {
        return false;
    }
    let mut depth = 1usize;
    let mut j = i + 5;
    while j < tokens.len() && depth > 0 {
        match tokens[j].kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::IntLit(_) => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Is `#![forbid(unsafe_code)]` present anywhere in the token stream?
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.iter().enumerate().any(|(i, t)| {
        ident(t) == Some("forbid")
            && matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('(')))
            && tokens.get(i + 2).and_then(ident) == Some("unsafe_code")
    })
}

/// Sources whose iteration order is not a pure function of the data.
fn is_nondet_order_source(name: &str) -> bool {
    matches!(
        name,
        "HashMap" | "HashSet" | "par_iter" | "into_par_iter" | "par_bridge" | "read_dir"
    )
}

/// Is the `IntLit` at `i` the start of a float literal (`0.25`, `1f64`,
/// `3e2`)? The lexer leaves `.` as punctuation, so `0.25` arrives as
/// `IntLit(0) . IntLit(25)`.
pub(crate) fn float_literal_at(tokens: &[Token], i: usize) -> bool {
    let Some(Tok::IntLit(text)) = tokens.get(i).map(|t| &t.kind) else {
        return false;
    };
    if text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent form without a dot (1e9) — but not hex (0x1e9).
    if !text.starts_with("0x") && text.contains(['e', 'E']) {
        return true;
    }
    matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('.')))
        && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(Tok::IntLit(_)))
}

/// det_float_order: inside each `fn` (signature through body), if a
/// nondeterministically ordered source appears anywhere, flag every
/// float accumulation site. Function granularity on purpose: the value
/// iterated is usually a parameter or local whose unordered type is
/// only visible tokens away from the fold itself.
fn det_float_order(ctx: &FileCtx, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if ident(&tokens[i]) != Some("fn") {
            i += 1;
            continue;
        }
        // Span the signature to the body's opening brace, then the
        // balanced body. `fn f();` (trait methods) has no body.
        let start = i;
        let mut j = i + 1;
        while j < tokens.len()
            && !matches!(tokens[j].kind, Tok::Punct('{') | Tok::Punct(';'))
        {
            j += 1;
        }
        if !matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Punct('{'))) {
            i = j;
            continue;
        }
        let mut depth = 1usize;
        j += 1;
        while j < tokens.len() && depth > 0 {
            match tokens[j].kind {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let body = &tokens[start..j];
        if body.iter().any(|t| ident(t).is_some_and(is_nondet_order_source)) {
            for (line, acc) in float_acc_sites(body) {
                findings.push(Finding {
                    rule: RuleId::DetFloatOrder,
                    file: ctx.rel_path.clone(),
                    line,
                    message: format!(
                        "float `{acc}` in a function touching a nondeterministically \
                         ordered source; float addition is not associative — collect \
                         into an ordered Vec (or sort) before accumulating"
                    ),
                });
            }
        }
        i = j.max(start + 1);
    }
    findings
}

/// Float-accumulation call sites in a token span: `.sum::<f32/f64>()`,
/// `.product::<…>()`, or a `fold` seeded with a float literal. Returns
/// `(line, accumulator name)` per site. Shared between `det_float_order`
/// (nondet-source heuristic) and the graph-backed `shard_safety`
/// mailbox-drain check.
pub(crate) fn float_acc_sites(body: &[Token]) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    for (k, t) in body.iter().enumerate() {
        let site = match ident(t) {
            // .sum::<f32>() / .product::<f64>()
            Some("sum")
                if matches!(body.get(k + 1).map(|t| &t.kind), Some(Tok::Punct(':')))
                    && matches!(body.get(k + 2).map(|t| &t.kind), Some(Tok::Punct(':')))
                    && matches!(body.get(k + 3).map(|t| &t.kind), Some(Tok::Punct('<')))
                    && matches!(body.get(k + 4).and_then(ident), Some("f32" | "f64")) =>
            {
                Some("sum")
            }
            Some("product")
                if matches!(body.get(k + 1).map(|t| &t.kind), Some(Tok::Punct(':')))
                    && matches!(body.get(k + 2).map(|t| &t.kind), Some(Tok::Punct(':')))
                    && matches!(body.get(k + 3).map(|t| &t.kind), Some(Tok::Punct('<')))
                    && matches!(body.get(k + 4).and_then(ident), Some("f32" | "f64")) =>
            {
                Some("product")
            }
            // .fold(0.0, …) / .fold(0f64, …)
            Some("fold")
                if matches!(body.get(k + 1).map(|t| &t.kind), Some(Tok::Punct('(')))
                    && float_literal_at(body, k + 2) =>
            {
                Some("fold")
            }
            _ => None,
        };
        if let Some(acc) = site {
            out.push((t.line, acc));
        }
    }
    out
}
