//! `detlint` CLI — scan the workspace, print findings plus per-rule
//! counts and timing, optionally write the machine-readable report,
//! exit non-zero on any unsuppressed finding.
//!
//! ```text
//! detlint [--root DIR] [--json PATH]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: detlint [--root DIR] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // detlint: allow(wall_clock) — lint wall time is perf reporting for
    // the CI log, not simulator behaviour.
    let t0 = std::time::Instant::now();
    let report = match detlint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();

    print!("{}", report.render());
    println!(
        "detlint: scanned {} files in {:.1} ms",
        report.files_scanned,
        elapsed.as_secs_f64() * 1e3
    );
    if let Some(path) = json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("detlint: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if report.has_findings() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("detlint: {err}\nusage: detlint [--root DIR] [--json PATH]");
    ExitCode::FAILURE
}
