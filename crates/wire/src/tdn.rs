//! The TDN identifier.
//!
//! A time-division network (TDN) is one discrete network condition the RDCN
//! moves between (§2.1). The paper allocates a single byte for the ID in
//! every packet format (§4.1), bounding an RDCN at 256 distinct paths.

use core::fmt;

/// Identifier of a time-division network, `0..=255`.
///
/// By convention in the paper's evaluation, TDN 0 is the electrical packet
/// network and TDN 1 the optical circuit network; the SYN of every
/// connection is accounted to TDN 0 (Appendix A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TdnId(pub u8);

impl TdnId {
    /// The packet-network TDN (and the TDN that owns every SYN).
    pub const ZERO: TdnId = TdnId(0);

    /// Maximum number of distinct TDNs an RDCN may advertise (one byte on
    /// the wire).
    pub const MAX_TDNS: usize = 256;

    /// The raw byte value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TdnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TDN{}", self.0)
    }
}

impl From<u8> for TdnId {
    fn from(v: u8) -> Self {
        TdnId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_index() {
        assert!(TdnId(0) < TdnId(1));
        assert_eq!(TdnId(7).index(), 7);
        assert_eq!(TdnId::ZERO, TdnId::default());
        assert_eq!(format!("{}", TdnId(3)), "TDN3");
    }
}
