//! Growable byte-buffer writing, replacing the `bytes` crate's `BufMut`.
//!
//! Packet emitters only ever append big-endian integers and slices to a
//! growable buffer, so this trait carries exactly that surface. All
//! multi-byte writes are network byte order (big-endian), matching the
//! on-wire formats this crate produces.

/// Append-only byte sink used by all `emit` methods.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u16(0x0102);
        v.put_u32(0x0304_0506);
        v.put_u64(0x0708_090A_0B0C_0D0E);
        v.put_i32(-2);
        v.put_slice(&[0xFF]);
        assert_eq!(
            v,
            [
                0xAB, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B,
                0x0C, 0x0D, 0x0E, 0xFF, 0xFF, 0xFF, 0xFE, 0xFF
            ]
        );
    }

    #[test]
    fn works_through_mut_reference() {
        fn emit<B: BufMut>(buf: &mut B) {
            buf.put_u16(0xBEEF);
        }
        let mut v = Vec::new();
        emit(&mut v);
        emit(&mut (&mut v));
        assert_eq!(v, [0xBE, 0xEF, 0xBE, 0xEF]);
    }
}
