//! TCP options, including the two TDTCP options of Fig. 5(b,c) and a
//! simplified MPTCP DSS mapping used by the `mptcp` baseline crate.
//!
//! TDTCP options use a single private option kind ([`TDTCP_KIND`]) with a
//! subtype nibble, mirroring how the kernel implementation piggybacks on
//! MPTCP's option layout:
//!
//! ```text
//! TD_CAPABLE   [kind=175][len=4][subtype=0 | version][num_tdns]
//! TD_DATA_ACK  [kind=175][len=5][subtype=1 | flags(D,A)][data_tdn][ack_tdn]
//! ```
//!
//! The `D` flag says the `data_tdn` byte is meaningful (segment carries
//! data sent on that TDN); `A` likewise for `ack_tdn` (§4.1).

use crate::error::{ParseError, Result};
use crate::tdn::TdnId;
use crate::buf::BufMut;

/// Private TCP option kind used by TDTCP (unassigned by IANA; the data
/// center operator controls both ends, §3.3).
pub const TDTCP_KIND: u8 = 175;
/// IANA option kind for MPTCP.
pub const MPTCP_KIND: u8 = 30;

/// TDTCP subtype: capability negotiation on SYN/SYN-ACK.
pub const TD_SUBTYPE_CAPABLE: u8 = 0;
/// TDTCP subtype: per-segment TDN tagging.
pub const TD_SUBTYPE_DATA_ACK: u8 = 1;
/// MPTCP subtype: data sequence signal (simplified DSS).
pub const MP_SUBTYPE_DSS: u8 = 2;

/// Maximum SACK blocks that fit alongside other options (RFC 2018).
pub const MAX_SACK_BLOCKS: usize = 4;

/// A single parsed TCP option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// No-op padding.
    Nop,
    /// Maximum segment size (SYN only).
    Mss(u16),
    /// Window scale shift (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// Selective acknowledgment blocks, `(left_edge, right_edge)` pairs.
    Sack(Vec<(u32, u32)>),
    /// RFC 7323 timestamps.
    Timestamps {
        /// Sender's timestamp clock value.
        tsval: u32,
        /// Echo of the peer's most recent tsval.
        tsecr: u32,
    },
    /// TDTCP capability negotiation (Fig. 5b).
    TdCapable {
        /// Protocol version (0 in this reproduction).
        version: u8,
        /// Number of TDNs the sender observes; both ends must agree (§4.2).
        num_tdns: u8,
    },
    /// TDTCP per-segment tagging (Fig. 5c).
    TdDataAck {
        /// TDN the data in this segment was sent on, if it carries data.
        data_tdn: Option<TdnId>,
        /// TDN the acknowledgment in this segment was sent on, if ACK set.
        ack_tdn: Option<TdnId>,
    },
    /// Simplified MPTCP DSS: maps this subflow segment into the
    /// connection-level data sequence space.
    MpDss {
        /// Connection-level (data) sequence number of the first payload byte.
        data_seq: u64,
        /// Subflow-level sequence number of the first payload byte.
        subflow_seq: u32,
        /// Length of the mapped region in bytes.
        len: u16,
    },
    /// Any option we do not interpret, preserved verbatim.
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Raw option body (excluding kind and length bytes).
        data: Vec<u8>,
    },
}

impl TcpOption {
    /// Encoded size in bytes, excluding inter-option padding.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Nop => 1,
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack(blocks) => 2 + 8 * blocks.len(),
            TcpOption::Timestamps { .. } => 10,
            TcpOption::TdCapable { .. } => 4,
            TcpOption::TdDataAck { .. } => 5,
            TcpOption::MpDss { .. } => 18,
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }

    /// Append this option to `buf`.
    pub fn emit<B: BufMut>(&self, buf: &mut B) {
        match self {
            TcpOption::Nop => buf.put_u8(1),
            TcpOption::Mss(mss) => {
                buf.put_u8(2);
                buf.put_u8(4);
                buf.put_u16(*mss);
            }
            TcpOption::WindowScale(shift) => {
                buf.put_u8(3);
                buf.put_u8(3);
                buf.put_u8(*shift);
            }
            TcpOption::SackPermitted => {
                buf.put_u8(4);
                buf.put_u8(2);
            }
            TcpOption::Sack(blocks) => {
                assert!(
                    blocks.len() <= MAX_SACK_BLOCKS,
                    "at most {MAX_SACK_BLOCKS} SACK blocks fit in the option space"
                );
                buf.put_u8(5);
                buf.put_u8((2 + 8 * blocks.len()) as u8);
                for &(l, r) in blocks {
                    buf.put_u32(l);
                    buf.put_u32(r);
                }
            }
            TcpOption::Timestamps { tsval, tsecr } => {
                buf.put_u8(8);
                buf.put_u8(10);
                buf.put_u32(*tsval);
                buf.put_u32(*tsecr);
            }
            TcpOption::TdCapable { version, num_tdns } => {
                assert!(*version < 16, "version is a nibble");
                buf.put_u8(TDTCP_KIND);
                buf.put_u8(4);
                buf.put_u8((TD_SUBTYPE_CAPABLE << 4) | version);
                buf.put_u8(*num_tdns);
            }
            TcpOption::TdDataAck { data_tdn, ack_tdn } => {
                let mut flags = 0u8;
                if data_tdn.is_some() {
                    flags |= 0x1; // D bit
                }
                if ack_tdn.is_some() {
                    flags |= 0x2; // A bit
                }
                buf.put_u8(TDTCP_KIND);
                buf.put_u8(5);
                buf.put_u8((TD_SUBTYPE_DATA_ACK << 4) | flags);
                buf.put_u8(data_tdn.map_or(0, |t| t.0));
                buf.put_u8(ack_tdn.map_or(0, |t| t.0));
            }
            TcpOption::MpDss {
                data_seq,
                subflow_seq,
                len,
            } => {
                buf.put_u8(MPTCP_KIND);
                buf.put_u8(18);
                buf.put_u8(MP_SUBTYPE_DSS << 4);
                buf.put_u8(0); // reserved flags
                buf.put_u64(*data_seq);
                buf.put_u32(*subflow_seq);
                buf.put_u16(*len);
            }
            TcpOption::Unknown { kind, data } => {
                buf.put_u8(*kind);
                buf.put_u8((2 + data.len()) as u8);
                buf.put_slice(data);
            }
        }
    }

    /// Parse one option from the front of `data`.
    ///
    /// Returns the option and the number of bytes consumed, or `Ok(None)`
    /// when an end-of-option-list byte (kind 0) is hit.
    pub fn parse(data: &[u8]) -> Result<Option<(TcpOption, usize)>> {
        let Some(&kind) = data.first() else {
            return Err(ParseError::Truncated);
        };
        if kind == 0 {
            return Ok(None); // EOL
        }
        if kind == 1 {
            return Ok(Some((TcpOption::Nop, 1)));
        }
        let Some(&len) = data.get(1) else {
            return Err(ParseError::Truncated);
        };
        let len = len as usize;
        if len < 2 || len > data.len() {
            return Err(ParseError::BadOption);
        }
        let body = &data[2..len];
        let opt = match kind {
            2 => {
                if body.len() != 2 {
                    return Err(ParseError::BadOption);
                }
                TcpOption::Mss(u16::from_be_bytes([body[0], body[1]]))
            }
            3 => {
                if body.len() != 1 {
                    return Err(ParseError::BadOption);
                }
                TcpOption::WindowScale(body[0])
            }
            4 => {
                if !body.is_empty() {
                    return Err(ParseError::BadOption);
                }
                TcpOption::SackPermitted
            }
            5 => {
                if body.is_empty() || !body.len().is_multiple_of(8) || body.len() / 8 > MAX_SACK_BLOCKS {
                    return Err(ParseError::BadOption);
                }
                let blocks = body
                    .chunks_exact(8)
                    .map(|c| {
                        (
                            u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                            u32::from_be_bytes([c[4], c[5], c[6], c[7]]),
                        )
                    })
                    .collect();
                TcpOption::Sack(blocks)
            }
            8 => {
                if body.len() != 8 {
                    return Err(ParseError::BadOption);
                }
                TcpOption::Timestamps {
                    tsval: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                    tsecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                }
            }
            TDTCP_KIND => {
                if body.is_empty() {
                    return Err(ParseError::BadOption);
                }
                let subtype = body[0] >> 4;
                match subtype {
                    TD_SUBTYPE_CAPABLE => {
                        if body.len() != 2 {
                            return Err(ParseError::BadOption);
                        }
                        TcpOption::TdCapable {
                            version: body[0] & 0x0F,
                            num_tdns: body[1],
                        }
                    }
                    TD_SUBTYPE_DATA_ACK => {
                        if body.len() != 3 {
                            return Err(ParseError::BadOption);
                        }
                        let flags = body[0] & 0x0F;
                        TcpOption::TdDataAck {
                            data_tdn: (flags & 0x1 != 0).then_some(TdnId(body[1])),
                            ack_tdn: (flags & 0x2 != 0).then_some(TdnId(body[2])),
                        }
                    }
                    _ => TcpOption::Unknown {
                        kind,
                        data: body.to_vec(),
                    },
                }
            }
            MPTCP_KIND => {
                if body.is_empty() {
                    return Err(ParseError::BadOption);
                }
                let subtype = body[0] >> 4;
                if subtype == MP_SUBTYPE_DSS {
                    if body.len() != 16 {
                        return Err(ParseError::BadOption);
                    }
                    TcpOption::MpDss {
                        data_seq: u64::from_be_bytes(body[2..10].try_into().expect("8 bytes")),
                        subflow_seq: u32::from_be_bytes(
                            body[10..14].try_into().expect("4 bytes"),
                        ),
                        len: u16::from_be_bytes(body[14..16].try_into().expect("2 bytes")),
                    }
                } else {
                    TcpOption::Unknown {
                        kind,
                        data: body.to_vec(),
                    }
                }
            }
            _ => TcpOption::Unknown {
                kind,
                data: body.to_vec(),
            },
        };
        Ok(Some((opt, len)))
    }

    /// Parse a full option block (the variable part of a TCP header).
    pub fn parse_all(mut data: &[u8]) -> Result<Vec<TcpOption>> {
        let mut out = Vec::new();
        while !data.is_empty() {
            match TcpOption::parse(data)? {
                None => break, // EOL: rest is padding
                Some((TcpOption::Nop, n)) => data = &data[n..],
                Some((opt, n)) => {
                    out.push(opt);
                    data = &data[n..];
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(opt: TcpOption) {
        let mut buf = Vec::new();
        opt.emit(&mut buf);
        assert_eq!(buf.len(), opt.wire_len(), "wire_len matches emit");
        let (parsed, consumed) = TcpOption::parse(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(parsed, opt);
    }

    #[test]
    fn round_trip_standard_options() {
        round_trip(TcpOption::Nop);
        round_trip(TcpOption::Mss(8948));
        round_trip(TcpOption::WindowScale(10));
        round_trip(TcpOption::SackPermitted);
        round_trip(TcpOption::Timestamps {
            tsval: 0xDEAD_BEEF,
            tsecr: 0x0102_0304,
        });
        round_trip(TcpOption::Sack(vec![(1000, 2000), (3000, 4000)]));
    }

    #[test]
    fn round_trip_tdtcp_options() {
        round_trip(TcpOption::TdCapable {
            version: 0,
            num_tdns: 2,
        });
        round_trip(TcpOption::TdDataAck {
            data_tdn: Some(TdnId(1)),
            ack_tdn: Some(TdnId(0)),
        });
        round_trip(TcpOption::TdDataAck {
            data_tdn: None,
            ack_tdn: Some(TdnId(3)),
        });
        round_trip(TcpOption::TdDataAck {
            data_tdn: Some(TdnId(255)),
            ack_tdn: None,
        });
    }

    #[test]
    fn round_trip_mptcp_dss() {
        round_trip(TcpOption::MpDss {
            data_seq: 0x1122_3344_5566_7788,
            subflow_seq: 0x99AA_BBCC,
            len: 8948,
        });
    }

    #[test]
    fn td_data_ack_flag_bits_on_wire() {
        let mut buf = Vec::new();
        TcpOption::TdDataAck {
            data_tdn: Some(TdnId(1)),
            ack_tdn: None,
        }
        .emit(&mut buf);
        assert_eq!(buf, vec![TDTCP_KIND, 5, (TD_SUBTYPE_DATA_ACK << 4) | 0x1, 1, 0]);
    }

    #[test]
    fn td_capable_on_wire_matches_fig5b() {
        let mut buf = Vec::new();
        TcpOption::TdCapable {
            version: 0,
            num_tdns: 2,
        }
        .emit(&mut buf);
        assert_eq!(buf, vec![TDTCP_KIND, 4, 0x00, 2]);
    }

    #[test]
    fn unknown_option_preserved() {
        round_trip(TcpOption::Unknown {
            kind: 99,
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn parse_all_with_padding() {
        let mut buf = Vec::new();
        TcpOption::Mss(1460).emit(&mut buf);
        TcpOption::Nop.emit(&mut buf);
        TcpOption::SackPermitted.emit(&mut buf);
        buf.push(0); // EOL
        buf.push(0xAB); // garbage after EOL must be ignored
        let opts = TcpOption::parse_all(&buf).unwrap();
        assert_eq!(opts, vec![TcpOption::Mss(1460), TcpOption::SackPermitted]);
    }

    #[test]
    fn malformed_options_rejected() {
        assert_eq!(TcpOption::parse(&[]), Err(ParseError::Truncated));
        assert_eq!(TcpOption::parse(&[2]), Err(ParseError::Truncated));
        // MSS with bad length.
        assert_eq!(TcpOption::parse(&[2, 3, 0]), Err(ParseError::BadOption));
        // Length overruns the buffer.
        assert_eq!(TcpOption::parse(&[5, 10, 0, 0]), Err(ParseError::BadOption));
        // Length below minimum.
        assert_eq!(TcpOption::parse(&[99, 1]), Err(ParseError::BadOption));
        // SACK body not a multiple of 8.
        assert_eq!(
            TcpOption::parse(&[5, 6, 0, 0, 0, 0]),
            Err(ParseError::BadOption)
        );
        // Too many SACK blocks.
        let mut b = vec![5u8, 2 + 8 * 5];
        b.extend_from_slice(&[0; 40]);
        assert_eq!(TcpOption::parse(&b), Err(ParseError::BadOption));
    }

    #[test]
    fn unknown_tdtcp_subtype_degrades_to_unknown() {
        let buf = [TDTCP_KIND, 4, 0xF0, 7];
        let (opt, _) = TcpOption::parse(&buf).unwrap().unwrap();
        assert!(matches!(opt, TcpOption::Unknown { kind: TDTCP_KIND, .. }));
    }
}
