//! Parse errors.

use core::fmt;

/// Why a buffer failed to parse as a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header demands.
    Truncated,
    /// A length field is inconsistent with the buffer or with the format.
    BadLength,
    /// A version/type field holds a value we do not speak.
    BadVersion,
    /// The checksum does not verify.
    BadChecksum,
    /// An option is malformed (bad kind-specific length, truncated body).
    BadOption,
    /// A field holds a semantically invalid value.
    BadValue,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::Truncated => "buffer truncated",
            ParseError::BadLength => "inconsistent length field",
            ParseError::BadVersion => "unsupported version",
            ParseError::BadChecksum => "checksum mismatch",
            ParseError::BadOption => "malformed option",
            ParseError::BadValue => "invalid field value",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for wire parsing.
pub type Result<T> = core::result::Result<T, ParseError>;
