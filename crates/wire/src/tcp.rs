//! TCP header encoding and parsing, with full option support and
//! pseudo-header checksumming.

use crate::checksum;
use crate::error::{ParseError, Result};
use crate::ip::Ipv4Header;
use crate::options::TcpOption;
use crate::buf::BufMut;

/// TCP header flags (we omit URG; nothing in the reproduction uses it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// No more data from sender.
    pub fin: bool,
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push buffered data to the application.
    pub psh: bool,
    /// Acknowledgment field is significant.
    pub ack: bool,
    /// ECN echo — receiver saw a CE mark (RFC 3168).
    pub ece: bool,
    /// Congestion window reduced — sender reacted to ECE.
    pub cwr: bool,
}

impl TcpFlags {
    /// Pack into the low byte of the flags field.
    pub fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
            | (self.ece as u8) << 6
            | (self.cwr as u8) << 7
    }

    /// Unpack from the flags byte.
    pub fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            ece: b & 0x40 != 0,
            cwr: b & 0x80 != 0,
        }
    }

    /// Convenience: a bare ACK.
    pub fn ack() -> TcpFlags {
        TcpFlags {
            ack: true,
            ..Default::default()
        }
    }

    /// Convenience: a SYN.
    pub fn syn() -> TcpFlags {
        TcpFlags {
            syn: true,
            ..Default::default()
        }
    }
}

/// Minimum TCP header length (no options).
pub const TCP_HEADER_MIN: usize = 20;
/// Maximum option space.
pub const TCP_MAX_OPTIONS: usize = 40;

/// A TCP header plus parsed options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window (unscaled wire value).
    pub window: u16,
    /// Options.
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// Encoded header length: 20 bytes plus options padded to 4-byte words.
    pub fn header_len(&self) -> usize {
        let opt: usize = self.options.iter().map(TcpOption::wire_len).sum();
        assert!(opt <= TCP_MAX_OPTIONS, "options exceed 40 bytes");
        TCP_HEADER_MIN + opt.div_ceil(4) * 4
    }

    /// Encode the header and payload with a correct checksum computed over
    /// the pseudo-header from `ip`.
    pub fn emit<B: BufMut>(&self, buf: &mut B, ip: &Ipv4Header, payload: &[u8]) {
        let hlen = self.header_len();
        let mut hdr = vec![0u8; hlen];
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = ((hlen / 4) as u8) << 4;
        hdr[13] = self.flags.to_byte();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        let mut cursor = TCP_HEADER_MIN;
        for opt in &self.options {
            let mut tmp = Vec::with_capacity(opt.wire_len());
            opt.emit(&mut tmp);
            hdr[cursor..cursor + tmp.len()].copy_from_slice(&tmp);
            cursor += tmp.len();
        }
        // Remaining option bytes stay zero = EOL padding.
        let sum = ip
            .pseudo_header_sum(hlen + payload.len())
            .wrapping_add(checksum::sum_words(&hdr))
            .wrapping_add(checksum::sum_words(payload));
        let ck = !checksum::fold(sum);
        hdr[16..18].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&hdr);
        buf.put_slice(payload);
    }

    /// Parse a TCP segment out of `data`, verifying the checksum against
    /// the pseudo-header from `ip`. Returns the header and payload offset.
    pub fn parse(data: &[u8], ip: &Ipv4Header) -> Result<(TcpHeader, usize)> {
        if data.len() < TCP_HEADER_MIN {
            return Err(ParseError::Truncated);
        }
        let hlen = ((data[12] >> 4) as usize) * 4;
        if hlen < TCP_HEADER_MIN || hlen > data.len() {
            return Err(ParseError::BadLength);
        }
        let sum = ip
            .pseudo_header_sum(data.len())
            .wrapping_add(checksum::sum_words(data));
        if checksum::fold(sum) != 0xFFFF {
            return Err(ParseError::BadChecksum);
        }
        let options = TcpOption::parse_all(&data[TCP_HEADER_MIN..hlen])?;
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: TcpFlags::from_byte(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
                options,
            },
            hlen,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::protocol;
    use crate::tdn::TdnId;

    fn ip() -> Ipv4Header {
        Ipv4Header::new(0x0A000001, 0x0A000002, protocol::TCP)
    }

    #[test]
    fn round_trip_plain_segment() {
        let h = TcpHeader {
            src_port: 40000,
            dst_port: 5001,
            seq: 0x11223344,
            ack: 0x55667788,
            flags: TcpFlags::ack(),
            window: 0xFFFF,
            options: vec![],
        };
        let payload = b"hello, rdcn";
        let mut buf = Vec::new();
        h.emit(&mut buf, &ip(), payload);
        let (parsed, off) = TcpHeader::parse(&buf, &ip()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(&buf[off..], payload);
    }

    #[test]
    fn round_trip_tdtcp_syn() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 1000,
            ack: 0,
            flags: TcpFlags::syn(),
            window: 65535,
            options: vec![
                TcpOption::Mss(8948),
                TcpOption::SackPermitted,
                TcpOption::WindowScale(10),
                TcpOption::TdCapable {
                    version: 0,
                    num_tdns: 2,
                },
            ],
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, &ip(), &[]);
        assert_eq!(buf.len() % 4, 0, "header padded to 32-bit words");
        let (parsed, _) = TcpHeader::parse(&buf, &ip()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn round_trip_data_segment_with_td_tag_and_sack() {
        let h = TcpHeader {
            src_port: 9,
            dst_port: 10,
            seq: 5000,
            ack: 777,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 512,
            options: vec![
                TcpOption::TdDataAck {
                    data_tdn: Some(TdnId(1)),
                    ack_tdn: Some(TdnId(0)),
                },
                TcpOption::Sack(vec![(6000, 7000), (8000, 9000)]),
            ],
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, &ip(), &[0xAA; 100]);
        let (parsed, off) = TcpHeader::parse(&buf, &ip()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(buf.len() - off, 100);
    }

    #[test]
    fn checksum_covers_payload() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ack(),
            window: 100,
            options: vec![],
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, &ip(), b"data!");
        *buf.last_mut().unwrap() ^= 0x01;
        assert_eq!(TcpHeader::parse(&buf, &ip()), Err(ParseError::BadChecksum));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ack(),
            window: 100,
            options: vec![],
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, &ip(), &[]);
        // Same bytes, different claimed source address: checksum must fail.
        let wrong_ip = Ipv4Header::new(0x0A0000FF, 0x0A000002, protocol::TCP);
        assert_eq!(
            TcpHeader::parse(&buf, &wrong_ip),
            Err(ParseError::BadChecksum)
        );
    }

    #[test]
    fn data_offset_below_minimum_rejected() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ack(),
            window: 100,
            options: vec![],
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, &ip(), &[]);
        buf[12] = 0x40; // data offset 4 words = 16 bytes < 20
        assert_eq!(TcpHeader::parse(&buf, &ip()), Err(ParseError::BadLength));
    }

    #[test]
    fn flags_round_trip_all_combinations() {
        for b in 0u16..=0xFF {
            let b = b as u8 & !0x20; // skip URG which we do not model
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }
}
