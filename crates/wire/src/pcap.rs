//! Minimal pcap (libpcap classic format) writer/reader for raw IP
//! packets, so simulated traffic can be dumped and opened in Wireshark —
//! the role the paper's Wireshark patches play for debugging TDTCP.
//!
//! Uses `LINKTYPE_RAW` (101): each record body is an IPv4 packet exactly
//! as the `wire` encoders produce it.

use crate::error::{ParseError, Result};
use crate::buf::BufMut;

const MAGIC: u32 = 0xA1B2_C3D4; // microsecond timestamps, native order written big-endian
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// LINKTYPE_RAW: raw IPv4/IPv6.
pub const LINKTYPE_RAW: u32 = 101;

/// A single captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp, microseconds since an arbitrary epoch (the
    /// simulator uses simulated time directly).
    pub ts_us: u64,
    /// Raw IP packet bytes.
    pub data: Vec<u8>,
}

/// Accumulates packets and serializes a classic pcap file.
#[derive(Debug, Default)]
pub struct PcapWriter {
    records: Vec<PcapRecord>,
}

impl PcapWriter {
    /// New, empty capture.
    pub fn new() -> Self {
        PcapWriter::default()
    }

    /// Append one raw-IP packet captured at `ts_us` microseconds.
    pub fn push(&mut self, ts_us: u64, data: Vec<u8>) {
        self.records.push(PcapRecord { ts_us, data });
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize the capture to pcap bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24 + self.records.iter().map(|r| 16 + r.data.len()).sum::<usize>());
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION_MAJOR);
        buf.put_u16(VERSION_MINOR);
        buf.put_i32(0); // thiszone
        buf.put_u32(0); // sigfigs
        buf.put_u32(65_535); // snaplen
        buf.put_u32(LINKTYPE_RAW);
        for r in &self.records {
            buf.put_u32((r.ts_us / 1_000_000) as u32);
            buf.put_u32((r.ts_us % 1_000_000) as u32);
            buf.put_u32(r.data.len() as u32);
            buf.put_u32(r.data.len() as u32);
            buf.put_slice(&r.data);
        }
        buf
    }
}

/// Parse a pcap file produced by [`PcapWriter`] (big-endian classic
/// format, LINKTYPE_RAW).
pub fn parse(data: &[u8]) -> Result<Vec<PcapRecord>> {
    if data.len() < 24 {
        return Err(ParseError::Truncated);
    }
    let magic = u32::from_be_bytes(data[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(ParseError::BadVersion);
    }
    let linktype = u32::from_be_bytes(data[20..24].try_into().expect("4 bytes"));
    if linktype != LINKTYPE_RAW {
        return Err(ParseError::BadValue);
    }
    let mut out = Vec::new();
    let mut off = 24usize;
    while off < data.len() {
        if data.len() - off < 16 {
            return Err(ParseError::Truncated);
        }
        let sec = u32::from_be_bytes(data[off..off + 4].try_into().expect("4"));
        let usec = u32::from_be_bytes(data[off + 4..off + 8].try_into().expect("4"));
        let incl = u32::from_be_bytes(data[off + 8..off + 12].try_into().expect("4")) as usize;
        let orig = u32::from_be_bytes(data[off + 12..off + 16].try_into().expect("4")) as usize;
        if incl != orig {
            return Err(ParseError::BadLength);
        }
        off += 16;
        if data.len() - off < incl {
            return Err(ParseError::Truncated);
        }
        out.push(PcapRecord {
            ts_us: u64::from(sec) * 1_000_000 + u64::from(usec),
            data: data[off..off + incl].to_vec(),
        });
        off += incl;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::TdnNotification;
    use crate::tdn::TdnId;

    #[test]
    fn round_trip_capture() {
        let mut w = PcapWriter::new();
        assert!(w.is_empty());
        w.push(1_000_000, vec![0x45, 0, 0, 20]);
        w.push(2_500_001, vec![0x45, 0, 0, 24, 9, 9]);
        assert_eq!(w.len(), 2);
        let bytes = w.to_bytes();
        let records = parse(&bytes).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_us, 1_000_000);
        assert_eq!(records[1].ts_us, 2_500_001);
        assert_eq!(records[1].data, vec![0x45, 0, 0, 24, 9, 9]);
    }

    #[test]
    fn header_fields() {
        let bytes = PcapWriter::new().to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xA1B2_C3D4u32.to_be_bytes());
        assert_eq!(&bytes[20..24], &101u32.to_be_bytes());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse(&[0u8; 10]), Err(ParseError::Truncated));
        let mut bad = PcapWriter::new().to_bytes();
        bad[0] = 0;
        assert_eq!(parse(&bad), Err(ParseError::BadVersion));
        // Truncated record.
        let mut w = PcapWriter::new();
        w.push(0, vec![1, 2, 3, 4]);
        let mut b = w.to_bytes();
        b.truncate(b.len() - 2);
        assert_eq!(parse(&b), Err(ParseError::Truncated));
    }

    #[test]
    fn carries_real_packets() {
        // A capture of an ICMP notification parses back to the packet.
        let mut icmp = Vec::new();
        let mut ip = crate::ip::Ipv4Header::new(1, 2, crate::ip::protocol::ICMP);
        ip.ttl = 1;
        let mut body = Vec::new();
        TdnNotification {
            active_tdn: TdnId(1),
        }
        .emit(&mut body);
        ip.emit(&mut icmp, body.len());
        icmp.extend_from_slice(&body);

        let mut w = PcapWriter::new();
        w.push(42, icmp.clone());
        let recs = parse(&w.to_bytes()).unwrap();
        assert_eq!(recs[0].data, icmp);
        let (hdr, _) = crate::ip::Ipv4Header::parse(&recs[0].data).unwrap();
        assert_eq!(hdr.protocol, crate::ip::protocol::ICMP);
        let n = TdnNotification::parse(&recs[0].data[20..]).unwrap();
        assert_eq!(n.active_tdn, TdnId(1));
    }
}
