//! # wire — packet formats for the TDTCP reproduction
//!
//! Byte-exact encoders/parsers for everything that crosses the simulated
//! network: a minimal IPv4 header with ECN codepoints, the TCP header with
//! full option support, the TDTCP protocol extensions from Fig. 5 of the
//! paper (the `TD_CAPABLE` handshake option, the `TD_DATA_ACK` per-segment
//! tag, and the ICMP TDN-change notification), SACK blocks (RFC 2018), and
//! a simplified MPTCP DSS mapping for the baseline.
//!
//! The simulator passes structured segments for speed; these codecs are
//! exercised by round-trip/property tests and by the `dissector` example,
//! and double as the reference wire specification of the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod checksum;
pub mod error;
pub mod icmp;
pub mod ip;
pub mod options;
pub mod pcap;
pub mod tcp;
pub mod tdn;

pub use buf::BufMut;
pub use error::{ParseError, Result};
pub use icmp::TdnNotification;
pub use ip::{Ecn, Ipv4Header};
pub use options::TcpOption;
pub use tcp::{TcpFlags, TcpHeader};
pub use tdn::TdnId;
