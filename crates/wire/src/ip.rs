//! Minimal IPv4 header (no IP options), with explicit ECN codepoint
//! handling because DCTCP's feedback loop runs over ECN marks.

use crate::checksum;
use crate::error::{ParseError, Result};
use crate::buf::BufMut;

/// ECN codepoint in the low two bits of the (former) TOS byte (RFC 3168).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ecn {
    /// Not ECN-capable transport.
    #[default]
    NotEct,
    /// ECN-capable, codepoint ECT(1).
    Ect1,
    /// ECN-capable, codepoint ECT(0).
    Ect0,
    /// Congestion experienced — set by a switch over threshold.
    Ce,
}

impl Ecn {
    /// The two-bit wire encoding.
    pub fn to_bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Ect1 => 0b01,
            Ecn::Ect0 => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    /// Decode from the two low bits.
    pub fn from_bits(bits: u8) -> Ecn {
        match bits & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }

    /// Whether the packet advertises an ECN-capable transport.
    pub fn is_capable(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }
}

/// IP protocol numbers we emit.
pub mod protocol {
    /// ICMP (the TDN-change notification rides on it).
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
}

/// An IPv4 header without options (IHL = 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// DSCP bits (upper six of the TOS byte).
    pub dscp: u8,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
}

/// Fixed length of the headers we emit (no options).
pub const IPV4_HEADER_LEN: usize = 20;

impl Ipv4Header {
    /// A default header for protocol `proto` between `src` and `dst`.
    pub fn new(src: u32, dst: u32, proto: u8) -> Self {
        Ipv4Header {
            dscp: 0,
            ecn: Ecn::NotEct,
            ident: 0,
            ttl: 64,
            protocol: proto,
            src,
            dst,
        }
    }

    /// Encode with the given payload length; computes the header checksum.
    pub fn emit<B: BufMut>(&self, buf: &mut B, payload_len: usize) {
        let total = (IPV4_HEADER_LEN + payload_len) as u16;
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = (self.dscp << 2) | self.ecn.to_bits();
        hdr[2..4].copy_from_slice(&total.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.ident.to_be_bytes());
        // flags/frag offset zero (don't-fragment semantics are irrelevant here)
        hdr[8] = self.ttl;
        hdr[9] = self.protocol;
        hdr[12..16].copy_from_slice(&self.src.to_be_bytes());
        hdr[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let ck = checksum::internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Parse a header; returns the header and the total-length field value.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, u16)> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(ParseError::BadVersion);
        }
        if (data[0] & 0x0F) != 5 {
            // We never emit IP options; reject rather than mis-parse.
            return Err(ParseError::BadLength);
        }
        if !checksum::verify(&data[..IPV4_HEADER_LEN]) {
            return Err(ParseError::BadChecksum);
        }
        let total = u16::from_be_bytes([data[2], data[3]]);
        if (total as usize) < IPV4_HEADER_LEN {
            return Err(ParseError::BadLength);
        }
        Ok((
            Ipv4Header {
                dscp: data[1] >> 2,
                ecn: Ecn::from_bits(data[1]),
                ident: u16::from_be_bytes([data[4], data[5]]),
                ttl: data[8],
                protocol: data[9],
                src: u32::from_be_bytes([data[12], data[13], data[14], data[15]]),
                dst: u32::from_be_bytes([data[16], data[17], data[18], data[19]]),
            },
            total,
        ))
    }

    /// TCP/UDP pseudo-header checksum contribution (RFC 793).
    pub fn pseudo_header_sum(&self, payload_len: usize) -> u32 {
        let mut sum = 0u32;
        for half in [
            (self.src >> 16) as u16,
            self.src as u16,
            (self.dst >> 16) as u16,
            self.dst as u16,
            self.protocol as u16,
            payload_len as u16,
        ] {
            sum = sum.wrapping_add(u32::from(half));
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = Ipv4Header {
            dscp: 0x2E,
            ecn: Ecn::Ect0,
            ident: 0x1234,
            ttl: 63,
            protocol: protocol::TCP,
            src: 0x0A00_0001,
            dst: 0x0A00_0102,
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, 100);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let (parsed, total) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(total, 120);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let h = Ipv4Header::new(1, 2, protocol::ICMP);
        let mut buf = Vec::new();
        h.emit(&mut buf, 0);
        buf[8] ^= 0xFF; // mangle TTL
        assert_eq!(Ipv4Header::parse(&buf), Err(ParseError::BadChecksum));
    }

    #[test]
    fn bad_version_rejected() {
        let h = Ipv4Header::new(1, 2, protocol::TCP);
        let mut buf = Vec::new();
        h.emit(&mut buf, 0);
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&buf), Err(ParseError::BadVersion));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Ipv4Header::parse(&[0x45; 10]), Err(ParseError::Truncated));
    }

    #[test]
    fn ecn_bits_round_trip() {
        for e in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(e.to_bits()), e);
        }
        assert!(!Ecn::NotEct.is_capable());
        assert!(Ecn::Ect0.is_capable());
        assert!(Ecn::Ce.is_capable());
    }

    #[test]
    fn ce_mark_survives_reencoding() {
        // A switch marks CE by rewriting the ECN bits; emulate that and
        // confirm the mark parses back out.
        let mut h = Ipv4Header::new(1, 2, protocol::TCP);
        h.ecn = Ecn::Ect0;
        let mut buf = Vec::new();
        h.emit(&mut buf, 0);
        // Switch rewrites: set CE and recompute checksum.
        h.ecn = Ecn::Ce;
        let mut buf2 = Vec::new();
        h.emit(&mut buf2, 0);
        let (parsed, _) = Ipv4Header::parse(&buf2).unwrap();
        assert_eq!(parsed.ecn, Ecn::Ce);
    }
}
