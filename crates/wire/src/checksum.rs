//! The Internet checksum (RFC 1071), used by the IPv4, TCP, and ICMP
//! encoders. One's-complement sum of 16-bit words, final complement.

/// Compute the Internet checksum over `data`, treating a trailing odd byte
/// as if padded with a zero byte.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// One's-complement 32-bit accumulation of 16-bit big-endian words.
pub fn sum_words(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([w[0], w[1]])));
    }
    if let [last] = chunks.remainder() {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([*last, 0])));
    }
    sum
}

/// Fold a 32-bit one's-complement accumulator down to 16 bits.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Verify data that includes its own checksum field: the folded sum must be
/// `0xFFFF` (all-ones before the final complement).
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3: words 0x0001, 0xf203,
        // 0xf4f5, 0xf6f7 sum to 0x2ddf0 -> folded 0xddf2 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn empty_checksums_to_all_ones() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn verify_round_trip() {
        // Build a fake header with the checksum at bytes 2..4.
        let mut pkt = vec![0x45, 0x00, 0x00, 0x00, 0x12, 0x34, 0xab, 0xcd];
        let ck = internet_checksum(&pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&pkt));
        pkt[5] ^= 0x01;
        assert!(!verify(&pkt));
    }

    #[test]
    fn checksum_of_all_zero() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
    }
}
