//! The ICMP TDN-change notification (Fig. 5a).
//!
//! ToR switches proactively notify attached hosts when the RDCN
//! reconfigures (§3.2). The notification is a dedicated ICMP packet whose
//! payload's first byte carries the now-active TDN ID. We use an
//! experimental ICMP type so the packet can never be confused with
//! echo/unreachable traffic.

use crate::checksum;
use crate::error::{ParseError, Result};
use crate::tdn::TdnId;
use crate::buf::BufMut;

/// Experimental ICMP type used for TDN-change notifications (RFC 4727
/// reserves 253/254 for experimentation).
pub const ICMP_TYPE_TDN_CHANGE: u8 = 253;

/// Fixed wire length: 4-byte ICMP header + 4-byte payload
/// (TDN ID + 3 reserved bytes keeping 4-byte alignment).
pub const TDN_NOTIFY_LEN: usize = 8;

/// A parsed TDN-change notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdnNotification {
    /// The TDN that is active from now on.
    pub active_tdn: TdnId,
}

impl TdnNotification {
    /// Encode, computing the ICMP checksum.
    pub fn emit<B: BufMut>(&self, buf: &mut B) {
        let mut pkt = [0u8; TDN_NOTIFY_LEN];
        pkt[0] = ICMP_TYPE_TDN_CHANGE;
        pkt[1] = 0; // code
        pkt[4] = self.active_tdn.0;
        // pkt[5..8] reserved, zero
        let ck = checksum::internet_checksum(&pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&pkt);
    }

    /// Parse and verify a notification.
    pub fn parse(data: &[u8]) -> Result<TdnNotification> {
        if data.len() < TDN_NOTIFY_LEN {
            return Err(ParseError::Truncated);
        }
        let data = &data[..TDN_NOTIFY_LEN];
        if data[0] != ICMP_TYPE_TDN_CHANGE {
            return Err(ParseError::BadValue);
        }
        if data[1] != 0 {
            return Err(ParseError::BadValue);
        }
        if !checksum::verify(data) {
            return Err(ParseError::BadChecksum);
        }
        Ok(TdnNotification {
            active_tdn: TdnId(data[4]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_ids() {
        for id in [0u8, 1, 2, 127, 255] {
            let n = TdnNotification {
                active_tdn: TdnId(id),
            };
            let mut buf = Vec::new();
            n.emit(&mut buf);
            assert_eq!(buf.len(), TDN_NOTIFY_LEN);
            assert_eq!(TdnNotification::parse(&buf).unwrap(), n);
        }
    }

    #[test]
    fn wrong_type_rejected() {
        let n = TdnNotification {
            active_tdn: TdnId(1),
        };
        let mut buf = Vec::new();
        n.emit(&mut buf);
        buf[0] = 8; // echo request
        assert_eq!(TdnNotification::parse(&buf), Err(ParseError::BadValue));
    }

    #[test]
    fn corruption_rejected() {
        let n = TdnNotification {
            active_tdn: TdnId(1),
        };
        let mut buf = Vec::new();
        n.emit(&mut buf);
        buf[4] = 2; // flip the TDN ID without fixing the checksum
        assert_eq!(TdnNotification::parse(&buf), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            TdnNotification::parse(&[ICMP_TYPE_TDN_CHANGE, 0, 0]),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn trailing_bytes_tolerated() {
        // A notification padded out to minimum frame size still parses.
        let n = TdnNotification {
            active_tdn: TdnId(5),
        };
        let mut buf = Vec::new();
        n.emit(&mut buf);
        buf.extend_from_slice(&[0xEE; 26]);
        assert_eq!(TdnNotification::parse(&buf).unwrap(), n);
    }
}
