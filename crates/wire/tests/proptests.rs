//! Property tests: every encodable packet parses back to itself, no
//! random byte soup can crash a parser, and the Internet checksum
//! self-verifies. Runs on the in-repo `testkit` harness.

use testkit::prop::{one_of, range, tuple2, uniform, vec_of, Gen};
use testkit::{tk_assert, tk_assert_eq};
use wire::ip::protocol;
use wire::options::MAX_SACK_BLOCKS;
use wire::{Ecn, Ipv4Header, TcpFlags, TcpHeader, TcpOption, TdnId, TdnNotification};

fn arb_flags() -> Gen<TcpFlags> {
    uniform::<u8>().map(|b| TcpFlags::from_byte(b & !0x20))
}

fn arb_tdn_opt() -> Gen<Option<TdnId>> {
    testkit::prop::option_of(uniform::<u8>().map(TdnId))
}

fn arb_option() -> Gen<TcpOption> {
    one_of(vec![
        uniform::<u16>().map(TcpOption::Mss),
        range(0u8..15).map(TcpOption::WindowScale),
        testkit::prop::just(TcpOption::SackPermitted),
        vec_of(tuple2(uniform::<u32>(), uniform::<u32>()), 1..MAX_SACK_BLOCKS + 1)
            .map(TcpOption::Sack),
        tuple2(uniform::<u32>(), uniform::<u32>())
            .map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
        tuple2(range(0u8..16), uniform::<u8>())
            .map(|(version, num_tdns)| TcpOption::TdCapable { version, num_tdns }),
        tuple2(arb_tdn_opt(), arb_tdn_opt())
            .map(|(data_tdn, ack_tdn)| TcpOption::TdDataAck { data_tdn, ack_tdn }),
        testkit::prop::tuple3(uniform::<u64>(), uniform::<u32>(), uniform::<u16>()).map(
            |(data_seq, subflow_seq, len)| TcpOption::MpDss {
                data_seq,
                subflow_seq,
                len,
            },
        ),
    ])
}

testkit::props! {
    fn tcp_option_round_trip(opt in arb_option()) {
        let mut buf = Vec::new();
        opt.emit(&mut buf);
        tk_assert_eq!(buf.len(), opt.wire_len());
        let (parsed, used) = TcpOption::parse(&buf).unwrap().unwrap();
        tk_assert_eq!(used, buf.len());
        tk_assert_eq!(parsed, opt);
    }

    fn tcp_header_round_trip(
        input in testkit::prop::tuple8(
            uniform::<u16>(),
            uniform::<u16>(),
            uniform::<u32>(),
            uniform::<u32>(),
            arb_flags(),
            uniform::<u16>(),
            vec_of(arb_option(), 0..3),
            vec_of(uniform::<u8>(), 0..256),
        )
    ) {
        let (src_port, dst_port, seq, ack, flags, window, opts, payload) = input;
        // Keep total option length within the 40-byte budget.
        let mut total = 0;
        let options: Vec<TcpOption> = opts
            .into_iter()
            .take_while(|o| {
                total += o.wire_len();
                total <= 40
            })
            .collect();
        let header = TcpHeader { src_port, dst_port, seq, ack, flags, window, options };
        let ip = Ipv4Header::new(0x0A000001, 0x0A000002, protocol::TCP);
        let mut buf = Vec::new();
        header.emit(&mut buf, &ip, &payload);
        let (parsed, off) = TcpHeader::parse(&buf, &ip).unwrap();
        tk_assert_eq!(parsed, header);
        tk_assert_eq!(&buf[off..], &payload[..]);
    }

    fn ipv4_round_trip(
        input in testkit::prop::tuple8(
            range(0u8..64),
            range(0u8..4),
            uniform::<u16>(),
            uniform::<u8>(),
            uniform::<u8>(),
            uniform::<u32>(),
            uniform::<u32>(),
            range(0usize..9000),
        )
    ) {
        let (dscp, ecn_bits, ident, ttl, proto, src, dst, payload_len) = input;
        let h = Ipv4Header {
            dscp,
            ecn: Ecn::from_bits(ecn_bits),
            ident,
            ttl,
            protocol: proto,
            src,
            dst,
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, payload_len);
        let (parsed, total) = Ipv4Header::parse(&buf).unwrap();
        tk_assert_eq!(parsed, h);
        tk_assert_eq!(total as usize, 20 + payload_len);
    }

    fn icmp_notification_round_trip(id in uniform::<u8>()) {
        let n = TdnNotification { active_tdn: TdnId(id) };
        let mut buf = Vec::new();
        n.emit(&mut buf);
        tk_assert_eq!(TdnNotification::parse(&buf).unwrap(), n);
    }

    fn option_parser_never_panics(bytes in vec_of(uniform::<u8>(), 0..64)) {
        let _ = TcpOption::parse_all(&bytes);
    }

    fn ipv4_parser_never_panics(bytes in vec_of(uniform::<u8>(), 0..64)) {
        let _ = Ipv4Header::parse(&bytes);
    }

    fn tcp_parser_never_panics(bytes in vec_of(uniform::<u8>(), 0..128)) {
        let ip = Ipv4Header::new(1, 2, protocol::TCP);
        let _ = TcpHeader::parse(&bytes, &ip);
    }

    fn icmp_parser_never_panics(bytes in vec_of(uniform::<u8>(), 0..32)) {
        let _ = TdnNotification::parse(&bytes);
    }

    // New with the testkit port: the Internet checksum self-verifies for
    // arbitrary payloads — appending the computed checksum makes the
    // whole buffer verify, and corrupting any single byte breaks it.
    fn checksum_self_verifies(
        input in tuple2(vec_of(uniform::<u8>(), 0..512), uniform::<u16>())
    ) {
        let (mut data, corrupt_at) = input;
        // Pad to even length: the checksum is appended as a 16-bit word,
        // so the verify pass must see it word-aligned.
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let ck = wire::checksum::internet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        tk_assert!(wire::checksum::verify(&data), "checksum must verify");
        // Flip one byte: verification must fail. A single-byte change
        // shifts the one's-complement sum by a nonzero delta strictly
        // smaller than 0xFFFF, so it can never alias to a valid sum.
        let idx = corrupt_at as usize % data.len();
        data[idx] ^= 0x5A;
        tk_assert!(
            !wire::checksum::verify(&data),
            "corruption at {idx} must break verification"
        );
    }

    // New with the testkit port: TDTCP option flag byte round-trips its
    // subtype nibble for every TDN pair (wire/src/options.rs TdDataAck).
    fn td_data_ack_flag_bits(pair in tuple2(arb_tdn_opt(), arb_tdn_opt())) {
        let (data_tdn, ack_tdn) = pair;
        let opt = TcpOption::TdDataAck { data_tdn, ack_tdn };
        let mut buf = Vec::new();
        opt.emit(&mut buf);
        // kind, len, subtype/flags, data tdn, ack tdn
        tk_assert_eq!(buf.len(), 5);
        let (parsed, _) = TcpOption::parse(&buf).unwrap().unwrap();
        tk_assert_eq!(parsed, opt);
    }
}
