//! Property tests: every encodable packet parses back to itself, and no
//! random byte soup can crash a parser.

use proptest::collection::vec;
use proptest::prelude::*;
use wire::ip::protocol;
use wire::options::MAX_SACK_BLOCKS;
use wire::{Ecn, Ipv4Header, TcpFlags, TcpHeader, TcpOption, TdnId, TdnNotification};

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (any::<u8>()).prop_map(|b| TcpFlags::from_byte(b & !0x20))
}

fn arb_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        any::<u16>().prop_map(TcpOption::Mss),
        (0u8..15).prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        vec((any::<u32>(), any::<u32>()), 1..=MAX_SACK_BLOCKS).prop_map(TcpOption::Sack),
        (any::<u32>(), any::<u32>())
            .prop_map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
        (0u8..16, any::<u8>()).prop_map(|(version, num_tdns)| TcpOption::TdCapable {
            version,
            num_tdns
        }),
        (
            proptest::option::of(any::<u8>().prop_map(TdnId)),
            proptest::option::of(any::<u8>().prop_map(TdnId))
        )
            .prop_map(|(data_tdn, ack_tdn)| TcpOption::TdDataAck { data_tdn, ack_tdn }),
        (any::<u64>(), any::<u32>(), any::<u16>()).prop_map(|(data_seq, subflow_seq, len)| {
            TcpOption::MpDss {
                data_seq,
                subflow_seq,
                len,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn tcp_option_round_trip(opt in arb_option()) {
        let mut buf = Vec::new();
        opt.emit(&mut buf);
        prop_assert_eq!(buf.len(), opt.wire_len());
        let (parsed, used) = TcpOption::parse(&buf).unwrap().unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(parsed, opt);
    }

    #[test]
    fn tcp_header_round_trip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        window in any::<u16>(),
        opts in vec(arb_option(), 0..3),
        payload in vec(any::<u8>(), 0..256),
    ) {
        // Keep total option length within the 40-byte budget.
        let mut total = 0;
        let options: Vec<TcpOption> = opts
            .into_iter()
            .take_while(|o| {
                total += o.wire_len();
                total <= 40
            })
            .collect();
        let header = TcpHeader { src_port, dst_port, seq, ack, flags, window, options };
        let ip = Ipv4Header::new(0x0A000001, 0x0A000002, protocol::TCP);
        let mut buf = Vec::new();
        header.emit(&mut buf, &ip, &payload);
        let (parsed, off) = TcpHeader::parse(&buf, &ip).unwrap();
        prop_assert_eq!(parsed, header);
        prop_assert_eq!(&buf[off..], &payload[..]);
    }

    #[test]
    fn ipv4_round_trip(
        dscp in 0u8..64,
        ecn_bits in 0u8..4,
        ident in any::<u16>(),
        ttl in any::<u8>(),
        proto in any::<u8>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        payload_len in 0usize..9000,
    ) {
        let h = Ipv4Header {
            dscp,
            ecn: Ecn::from_bits(ecn_bits),
            ident,
            ttl,
            protocol: proto,
            src,
            dst,
        };
        let mut buf = Vec::new();
        h.emit(&mut buf, payload_len);
        let (parsed, total) = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(total as usize, 20 + payload_len);
    }

    #[test]
    fn icmp_notification_round_trip(id in any::<u8>()) {
        let n = TdnNotification { active_tdn: TdnId(id) };
        let mut buf = Vec::new();
        n.emit(&mut buf);
        prop_assert_eq!(TdnNotification::parse(&buf).unwrap(), n);
    }

    #[test]
    fn option_parser_never_panics(bytes in vec(any::<u8>(), 0..64)) {
        let _ = TcpOption::parse_all(&bytes);
    }

    #[test]
    fn ipv4_parser_never_panics(bytes in vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::parse(&bytes);
    }

    #[test]
    fn tcp_parser_never_panics(bytes in vec(any::<u8>(), 0..128)) {
        let ip = Ipv4Header::new(1, 2, protocol::TCP);
        let _ = TcpHeader::parse(&bytes, &ip);
    }

    #[test]
    fn icmp_parser_never_panics(bytes in vec(any::<u8>(), 0..32)) {
        let _ = TdnNotification::parse(&bytes);
    }
}
