//! Time-series tracing for the figure harness.
//!
//! Every figure in the paper is either a time series (sequence graphs,
//! VOQ occupancy) or a CDF. [`TimeSeries`] records `(time, value)` points;
//! helpers resample onto a fixed grid so several variants can be printed
//! side by side, and average a periodic signal over its period (the paper
//! averages "across thousands of optical weeks" for Fig. 2).

use crate::time::{SimDuration, SimTime};

/// A named series of `(time, value)` samples, non-decreasing in time.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Display name, e.g. `"tdtcp"` or `"voq_len"`.
    pub name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New, empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Record a sample. Time must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| t >= lt),
            "time series {} went backwards",
            self.name
        );
        self.points.push((t, v));
    }

    /// Raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Step-function value at time `t`: the most recent sample at or before
    /// `t`, or `default` if none exists yet.
    pub fn value_at(&self, t: SimTime, default: f64) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => default,
            i => self.points[i - 1].1,
        }
    }

    /// Resample onto a fixed grid `[start, end)` with the given step,
    /// returning one value per grid point (step-function semantics).
    pub fn resample(&self, start: SimTime, end: SimTime, step: SimDuration, default: f64) -> Vec<f64> {
        assert!(step > SimDuration::ZERO);
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            out.push(self.value_at(t, default));
            t += step;
        }
        out
    }

    /// Average this series over a repeating period: fold all samples in
    /// `[start, end)` into one period of length `period` sampled every
    /// `step`, averaging across repetitions. The value at phase `p` of the
    /// result is the mean of `value_at(start + k*period + p)` over all
    /// complete periods `k`. This mirrors the paper's "averaged across
    /// thousands of optical weeks" sequence graphs when applied to
    /// per-period-normalized values.
    pub fn fold_periodic(
        &self,
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        step: SimDuration,
        default: f64,
    ) -> Vec<f64> {
        assert!(period > SimDuration::ZERO && step > SimDuration::ZERO);
        let span = end.saturating_since(start);
        let reps = (span.as_nanos() / period.as_nanos()).max(1);
        let bins = (period.as_nanos() / step.as_nanos()) as usize;
        let mut acc = vec![0.0; bins];
        for k in 0..reps {
            let base = start + period * k;
            for (b, slot) in acc.iter_mut().enumerate() {
                let t = base + step * b as u64;
                *slot += self.value_at(t, default);
            }
        }
        for slot in &mut acc {
            *slot /= reps as f64;
        }
        acc
    }
}

/// A counter sampled as a series: tracks a current value and records every
/// change; convenient for queue lengths and outstanding-packet gauges.
#[derive(Debug, Clone)]
pub struct Gauge {
    series: TimeSeries,
    value: f64,
}

impl Gauge {
    /// New gauge starting at `initial`.
    pub fn new(name: impl Into<String>, initial: f64) -> Self {
        Gauge {
            series: TimeSeries::new(name),
            value: initial,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Set the value at time `t`, recording the change.
    pub fn set(&mut self, t: SimTime, v: f64) {
        self.value = v;
        self.series.push(t, v);
    }

    /// Add `dv` (may be negative) at time `t`.
    pub fn add(&mut self, t: SimTime, dv: f64) {
        self.set(t, self.value + dv);
    }

    /// The recorded series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consume the gauge, returning its series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn value_at_step_semantics() {
        let mut s = TimeSeries::new("s");
        s.push(us(10), 1.0);
        s.push(us(20), 2.0);
        assert_eq!(s.value_at(us(5), 0.0), 0.0);
        assert_eq!(s.value_at(us(10), 0.0), 1.0);
        assert_eq!(s.value_at(us(15), 0.0), 1.0);
        assert_eq!(s.value_at(us(20), 0.0), 2.0);
        assert_eq!(s.value_at(us(99), 0.0), 2.0);
        assert_eq!(s.last_value(), Some(2.0));
    }

    #[test]
    fn resample_grid() {
        let mut s = TimeSeries::new("s");
        s.push(us(0), 0.0);
        s.push(us(10), 10.0);
        s.push(us(30), 30.0);
        let v = s.resample(us(0), us(40), SimDuration::from_micros(10), -1.0);
        assert_eq!(v, vec![0.0, 10.0, 10.0, 30.0]);
    }

    #[test]
    fn fold_periodic_averages() {
        // Square wave with period 20us: 0 for [0,10), 4 for [10,20), repeated;
        // second period uses 2 and 6 so the fold should average to 1 and 5.
        let mut s = TimeSeries::new("w");
        s.push(us(0), 0.0);
        s.push(us(10), 4.0);
        s.push(us(20), 2.0);
        s.push(us(30), 6.0);
        let folded = s.fold_periodic(
            us(0),
            us(40),
            SimDuration::from_micros(20),
            SimDuration::from_micros(10),
            0.0,
        );
        assert_eq!(folded, vec![1.0, 5.0]);
    }

    #[test]
    fn gauge_records_changes() {
        let mut g = Gauge::new("q", 0.0);
        g.add(us(1), 3.0);
        g.add(us(2), -1.0);
        g.set(us(3), 7.0);
        assert_eq!(g.value(), 7.0);
        let s = g.into_series();
        assert_eq!(
            s.points(),
            &[(us(1), 3.0), (us(2), 2.0), (us(3), 7.0)]
        );
    }

    #[test]
    fn empty_series_defaults() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.value_at(us(5), 42.0), 42.0);
        assert_eq!(s.last_value(), None);
    }
}
