//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the TDTCP reproduction: simulated time
//! ([`SimTime`]/[`SimDuration`]), a deterministic event queue
//! ([`EventQueue`]) with FIFO tie-breaking and cancellation, an explicitly
//! seeded RNG ([`DetRng`]), and the statistics/tracing types the evaluation
//! harness uses to regenerate the paper's figures ([`Cdf`], [`TimeSeries`],
//! [`Gauge`]).
//!
//! Design follows the event-driven, no-surprises style of smoltcp: the
//! simulation is single-threaded and synchronous; simulated time — not
//! wall-clock I/O — drives all progress, so runs are reproducible
//! bit-for-bit from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod par;
pub mod recorder;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use recorder::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use rng::DetRng;
pub use stats::{Cdf, Histogram, Welford};
pub use time::{SimDuration, SimTime};
pub use trace::{Gauge, TimeSeries};
