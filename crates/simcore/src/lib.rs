//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the TDTCP reproduction: simulated time
//! ([`SimTime`]/[`SimDuration`]), a deterministic event queue
//! ([`EventQueue`]) with FIFO tie-breaking and cancellation, an explicitly
//! seeded RNG ([`DetRng`]), and the statistics/tracing types the evaluation
//! harness uses to regenerate the paper's figures ([`Cdf`], [`TimeSeries`],
//! [`Gauge`]).
//!
//! Design follows the event-driven, no-surprises style of smoltcp: the
//! simulation is single-threaded and synchronous; simulated time — not
//! wall-clock I/O — drives all progress, so runs are reproducible
//! bit-for-bit from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod par;
pub mod recorder;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;

pub use event::{EventId, EventQueue};
pub use recorder::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use rng::DetRng;
pub use stats::{Cdf, Histogram, Welford};
pub use time::{SimDuration, SimTime};
pub use trace::{Gauge, TimeSeries};
pub use wheel::{TimerWheel, WheelEventId};

/// The event queue the simulators use by default.
///
/// [`EventQueue`] (binary heap over a slab) and [`TimerWheel`]
/// (hierarchical wheel over the same slab) are digest-interchangeable —
/// both pop in exact `(time, seq)` order — so this alias names whichever
/// wins the `event_queue_*` / `timer_wheel_*` microbench race in
/// `BENCH_simulator.json`. Currently the wheel: O(1) amortized
/// schedule/pop beats the heap's O(log n) sift on all three mixes
/// (push/pop ~38 vs ~46 µs, cancel/rearm ~52 vs ~86 µs, windowed
/// drain ~120 vs ~223 µs), and the bigrun engine numbers agree.
pub type DefaultQueue<E> = TimerWheel<E>;

/// Handle type paired with [`DefaultQueue`] (see [`EventId`] /
/// [`WheelEventId`]).
pub type DefaultEventId = WheelEventId;
