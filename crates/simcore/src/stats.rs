//! Statistics used by the evaluation harness: empirical CDFs and
//! percentiles (Fig. 10, §5.4 latency breakdowns), streaming mean/variance,
//! and fixed-width histograms.

/// Collects samples and answers percentile / CDF queries.
///
/// Samples are kept unsorted and sorted lazily on query, so insertion is
/// O(1) and bulk querying after a run is cheap.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// New, empty collector.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Add one sample. Non-finite samples are rejected with a panic — they
    /// indicate an upstream arithmetic bug, never valid data.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample {x}");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// The p-th percentile (`p` in `[0, 100]`) using nearest-rank.
    /// Returns `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(n - 1)])
    }

    /// Minimum sample.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Maximum sample.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Empirical CDF value at `x`: fraction of samples `<= x`.
    pub fn fraction_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The full CDF as `(value, cumulative fraction)` steps, suitable for
    /// plotting. Duplicate values are merged into a single step.
    pub fn steps(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.samples.iter().enumerate() {
            let frac = (i + 1) as f64 / n as f64;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }
}

/// Welford's streaming mean and variance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Incorporate one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `n` equal buckets.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0);
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut c = Cdf::new();
        for i in 1..=100 {
            c.add(i as f64);
        }
        assert_eq!(c.percentile(50.0), Some(50.0));
        assert_eq!(c.percentile(90.0), Some(90.0));
        assert_eq!(c.percentile(99.0), Some(99.0));
        assert_eq!(c.percentile(100.0), Some(100.0));
        assert_eq!(c.percentile(0.0), Some(1.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(100.0));
    }

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.percentile(50.0), None);
        assert_eq!(c.mean(), None);
        assert_eq!(c.fraction_le(1.0), 0.0);
        assert!(c.steps().is_empty());
    }

    #[test]
    fn fraction_le_and_steps() {
        let mut c = Cdf::new();
        for x in [0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 2.0, 3.0, 4.0, 5.0] {
            c.add(x);
        }
        assert!((c.fraction_le(0.0) - 0.4).abs() < 1e-12);
        assert!((c.fraction_le(2.0) - 0.7).abs() < 1e-12);
        assert!((c.fraction_le(10.0) - 1.0).abs() < 1e-12);
        assert!((c.fraction_le(-1.0) - 0.0).abs() < 1e-12);
        let steps = c.steps();
        assert_eq!(steps[0], (0.0, 0.4));
        assert_eq!(*steps.last().unwrap(), (5.0, 1.0));
    }

    #[test]
    fn add_after_query_resorts() {
        let mut c = Cdf::new();
        c.add(5.0);
        assert_eq!(c.percentile(50.0), Some(5.0));
        c.add(1.0);
        assert_eq!(c.min(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Cdf::new().add(f64::NAN);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 100.0] {
            h.add(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.total(), 7);
    }
}
