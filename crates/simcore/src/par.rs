//! Zero-dependency parallel execution of share-nothing simulation runs.
//!
//! Simulation runs are independent per `(variant, seed, horizon)`: each
//! builds its own [`crate::EventQueue`], RNG and endpoints from an
//! explicit seed and shares no mutable state with any other run. That
//! makes sharding trivial *and* bit-deterministic: [`par_map`] executes
//! one closure per item on a scoped worker pool and collects results in
//! **index order**, so the output vector is byte-identical to a serial
//! `items.map(f)` no matter how the OS schedules the workers.
//!
//! Determinism contract (see DESIGN.md §9):
//! * every per-run seed is derived *before* sharding (it lives in the
//!   item, never in thread identity or claim order),
//! * workers claim items via an atomic cursor but write results into
//!   their item's slot, so collection order is the submission order,
//! * `jobs = 1` (or a single item) bypasses the pool entirely — the
//!   closure runs on the calling thread, which is the debugging path.
//!
//! The process-wide default worker count is `available_parallelism()`,
//! overridable with [`set_default_jobs`] (the `figures` binary wires its
//! `--jobs N` flag and the `FIGURES_JOBS` environment variable here).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count; `0` means "auto" (use
/// [`available`]).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Number of hardware threads available to this process (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set the process-wide default worker count used by [`par_map`].
/// `0` restores "auto" (`available_parallelism()`); `1` forces every
/// [`par_map`] onto the calling thread (the serial debugging path).
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The resolved default worker count: the last [`set_default_jobs`]
/// value, or `available_parallelism()` when unset/auto.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available(),
        n => n,
    }
}

/// Map `f` over `items` on the default worker pool (see
/// [`default_jobs`]), returning results in item order.
pub fn par_map<I, T>(items: Vec<I>, f: impl Fn(usize, I) -> T + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    par_map_jobs(default_jobs(), items, f)
}

/// Map `f` over `items` with at most `jobs` worker threads, returning
/// `vec![f(0, items[0]), f(1, items[1]), ...]` — index-ordered and
/// bit-identical to the serial map for any pure `f`.
///
/// `jobs <= 1` or fewer than two items runs serially on the calling
/// thread (no pool, no atomics). A panic in any worker propagates to the
/// caller once all workers have stopped.
pub fn par_map_jobs<I, T>(jobs: usize, items: Vec<I>, f: impl Fn(usize, I) -> T + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let workers = jobs.min(n);
    // Items are claimed through an atomic cursor (work stealing keeps
    // long runs from serializing behind one slow shard); each result
    // lands in its item's slot, so collection below is in index order.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item claimed exactly once");
                let out = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every item produced a result")
        })
        .collect()
}

/// Windowed barrier executor for intra-run sharding (DESIGN.md §13).
///
/// Runs a sequence of *windows*. In each window, `leader` runs first on
/// the calling thread with exclusive access to all shards (it drains
/// mailboxes, decides the window bounds, and returns `false` to stop);
/// then `work(shard_index, &mut shard)` runs once per shard, possibly in
/// parallel across up to `jobs` workers. Two barriers per window bracket
/// the leader section so no worker ever overlaps it.
///
/// Determinism contract: `work` on shard `i` may touch only shard `i`
/// (the `&mut` exclusivity enforces it), so the multiset of per-shard
/// effects is the same for any worker count; everything order-sensitive
/// (mailbox draining, reductions) happens in the single-threaded leader
/// in fixed shard order. `jobs <= 1` runs the whole loop inline —
/// leader, then shards 0..n in order — with no threads and no atomics:
/// the debugging path, and byte-identical to the parallel path by the
/// argument above.
///
/// The fan-out is a **persistent** pool: workers are spawned once and
/// parked on per-worker channels between windows, so the per-window cost
/// is two channel hops instead of `workers` thread spawns (which
/// dominate short windows — a multirack run has thousands of them).
/// Barriers are channel round-trips, not `std::sync::Barrier` (which
/// cannot be broken): each worker owns a drop guard that reports
/// completion *even while unwinding*, so a panicking worker wakes the
/// leader instead of deadlocking it, the leader stops issuing windows,
/// and the scope join propagates the panic to the caller.
pub fn run_windows<S>(
    jobs: usize,
    shards: &[Mutex<S>],
    mut leader: impl FnMut(&[Mutex<S>]) -> bool,
    work: impl Fn(usize, &mut S) + Sync,
) where
    S: Send,
{
    let n = shards.len();
    if jobs <= 1 || n <= 1 {
        while leader(shards) {
            for (i, s) in shards.iter().enumerate() {
                work(i, &mut s.lock().expect("shard poisoned"));
            }
        }
        return;
    }
    let workers = jobs.min(n);
    let work = &work;
    let cursor = &AtomicUsize::new(0);

    /// Reports a worker's window as finished when dropped — including
    /// a drop during unwind, where it flags the panic so the leader
    /// stops cleanly instead of waiting forever.
    struct DoneGuard(std::sync::mpsc::Sender<bool>);
    impl Drop for DoneGuard {
        fn drop(&mut self) {
            let _ = self.0.send(std::thread::panicking());
        }
    }

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = std::sync::mpsc::channel::<bool>();
        let mut go_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
            go_txs.push(go_tx);
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                // Parked here between windows; a dropped sender (leader
                // finished or bailed) ends the worker.
                while go_rx.recv().is_ok() {
                    let _done = DoneGuard(done_tx.clone());
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        work(i, &mut shards[i].lock().expect("shard poisoned"));
                    }
                }
            });
        }
        drop(done_tx);

        // Workers are parked whenever the leader runs, so it has the
        // shards to itself.
        'windows: while leader(shards) {
            cursor.store(0, Ordering::Relaxed);
            for go in &go_txs {
                go.send(()).expect("worker exited early");
            }
            for _ in 0..workers {
                if done_rx.recv().expect("worker exited early") {
                    break 'windows; // a worker panicked: stop issuing work
                }
            }
        }
        drop(go_txs); // unpark workers into their exit path
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let par = par_map_jobs(jobs, items.clone(), |_, x| x * x + 1);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..50).collect();
        let out = par_map_jobs(4, items, |i, item| (i, item));
        for (i, (idx, item)) in out.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(i, item);
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_jobs(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map_jobs(4, vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn default_jobs_round_trip() {
        let before = default_jobs();
        assert!(before >= 1);
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert_eq!(default_jobs(), available());
    }

    #[test]
    fn non_send_sync_state_in_closure_results() {
        // Heavier payloads (e.g. RunResult-sized structs) move cleanly.
        let out = par_map_jobs(2, vec![1u64, 2, 3], |i, x| vec![x; i + 1]);
        assert_eq!(out, vec![vec![1], vec![2, 2], vec![3, 3, 3]]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        par_map_jobs(2, vec![0u32, 1, 2, 3], |_, x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    /// Toy sharded computation: each window the leader passes one token
    /// from shard i to shard i+1 (the "mailbox"), each shard then does
    /// local work. Any worker count must produce the same final state.
    fn windows_fixture(jobs: usize, shards: usize, rounds: u32) -> Vec<u64> {
        let state: Vec<Mutex<(u64, u32)>> = (0..shards).map(|_| Mutex::new((0, 0))).collect();
        let mut round = 0u32;
        run_windows(
            jobs,
            &state,
            |shards| {
                // Ring-shift each shard's accumulator into the next
                // shard, in fixed shard order.
                let vals: Vec<u64> = shards
                    .iter()
                    .map(|s| s.lock().unwrap().0)
                    .collect();
                for (i, s) in shards.iter().enumerate() {
                    let from = (i + shards.len() - 1) % shards.len();
                    s.lock().unwrap().0 = vals[from];
                }
                round += 1;
                round <= rounds
            },
            |i, s| {
                s.0 = s.0.wrapping_mul(31).wrapping_add(i as u64 + 1);
                s.1 += 1;
            },
        );
        let out: Vec<u64> = state.iter().map(|s| s.lock().unwrap().0).collect();
        for s in &state {
            assert_eq!(s.lock().unwrap().1, rounds, "every shard ran every window");
        }
        out
    }

    #[test]
    fn run_windows_is_worker_count_invariant() {
        let serial = windows_fixture(1, 5, 40);
        for jobs in [2, 3, 4, 16] {
            assert_eq!(windows_fixture(jobs, 5, 40), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn run_windows_leader_false_stops_immediately() {
        let state: Vec<Mutex<u32>> = (0..3).map(|_| Mutex::new(0)).collect();
        run_windows(4, &state, |_| false, |_, s| *s += 1);
        for s in &state {
            assert_eq!(*s.lock().unwrap(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn run_windows_work_panic_propagates() {
        let state: Vec<Mutex<u32>> = (0..4).map(|_| Mutex::new(0)).collect();
        let mut first = true;
        run_windows(
            2,
            &state,
            |_| std::mem::take(&mut first),
            |i, _| {
                if i == 3 {
                    panic!("boom");
                }
            },
        );
    }
}
