//! Deterministic random number generation.
//!
//! All stochastic behaviour in the simulator (cross traffic, notification
//! latency jitter, loss injection in tests) draws from a [`DetRng`] seeded
//! explicitly, so identical seeds yield identical runs. The generator is
//! `testkit`'s xoshiro256++ ([`testkit::TkRng`]) — in-repo, golden-pinned,
//! and free of registry dependencies — rather than thread-local entropy.

use testkit::rng::{TkRng, UniformRange};

/// A deterministic, explicitly seeded RNG.
pub struct DetRng {
    inner: TkRng,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: TkRng::new(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.inner.seed()
    }

    /// Derive an independent child generator; `label` decorrelates children
    /// created from the same parent seed (e.g. one stream per flow).
    pub fn fork(&self, label: u64) -> DetRng {
        DetRng {
            inner: self.inner.fork(label),
        }
    }

    /// Uniform sample from an integer or float range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: UniformRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen_f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.chance(p)
    }

    /// Exponentially distributed sample with the given mean (used for
    /// Poisson inter-arrival cross traffic).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        self.inner.exponential(mean)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        self.inner.shuffle(xs)
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        self.inner.choose(xs)
    }

    /// `k` distinct indices sampled uniformly from `0..n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        self.inner.sample_indices(n, k)
    }
}

impl std::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetRng").field("seed", &self.seed()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let parent = DetRng::new(7);
        let mut c1 = parent.fork(0);
        let mut c1b = parent.fork(0);
        let mut c2 = parent.fork(1);
        let a: Vec<u64> = (0..8).map(|_| c1.gen_range(0..u64::MAX)).collect();
        let b: Vec<u64> = (0..8).map(|_| c1b.gen_range(0..u64::MAX)).collect();
        let c: Vec<u64> = (0..8).map(|_| c2.gen_range(0..u64::MAX)).collect();
        assert_eq!(a, b, "same label forks identically");
        assert_ne!(a, c, "different labels decorrelate");
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = DetRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_and_choose_deterministic() {
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        let mut xs: Vec<u32> = (0..20).collect();
        let mut ys: Vec<u32> = (0..20).collect();
        a.shuffle(&mut xs);
        b.shuffle(&mut ys);
        assert_eq!(xs, ys);
        assert_eq!(a.choose(&xs), b.choose(&ys));
    }
}
