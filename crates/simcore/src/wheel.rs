//! Hierarchical timer wheel — an alternative event queue to the binary
//! heap in [`crate::event`].
//!
//! Same contract as [`crate::EventQueue`]: events pop in exact
//! `(time, seq)` order where `seq` is the monotone insertion counter, so
//! the two implementations are digest-interchangeable — swapping one for
//! the other cannot change any simulation output, only its wall time.
//! `scripts/ci.sh bench` races them head-to-head (`event_queue_*` vs
//! `timer_wheel_*` in `BENCH_simulator.json`); [`crate::DefaultQueue`]
//! names the winner.
//!
//! Layout: six levels of 64 slots each. Level `l` buckets spans of
//! `64^l · 1024 ns`, so the wheel covers ~70 000 s before anything
//! lands in the unsorted overflow list (rebased wholesale if the
//! levels ever run dry, which no current workload reaches). Each slot
//! holds small `{time, seq, slot}` keys; payloads live in the same
//! slab-with-free-list arrangement as the heap queue, so cancellation
//! is a lazy O(1) mark. Draining a slot sorts its keys (slots are
//! narrow, so runs are short) into a `ready` batch that pops by
//! cursor; an insert below the drained horizon binary-searches into
//! `ready`, keeping the total order exact.

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Same shape as the heap queue's id: `seq` disambiguates slab reuse, so
/// a stale id whose slot now holds a different event fails the seq match
/// instead of cancelling it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WheelEventId {
    slot: u32,
    seq: u64,
}

/// Bucket key: 24 bytes regardless of payload size (mirrors the heap
/// queue's `Entry`).
#[derive(Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

enum Slot<E> {
    /// On the free list, available for the next `schedule`.
    Vacant,
    /// Scheduled and not yet fired or cancelled.
    Live { seq: u64, payload: E },
    /// Cancelled while live; freed when its key surfaces.
    Cancelled,
}

/// log2 of the level-0 slot width in nanoseconds (1024 ns).
const GRAN_BITS: u32 = 10;
/// log2 of the slots per level (64).
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const LEVELS: usize = 6;

/// Slot width of level `l` in nanoseconds.
fn width(l: usize) -> u64 {
    1u64 << (GRAN_BITS + LEVEL_BITS * l as u32)
}

struct Level {
    /// Keys bucketed by `(time / width) % SLOTS`.
    buckets: Vec<Vec<Key>>,
    /// Bit `i` set iff `buckets[i]` is non-empty.
    occupied: u64,
}

impl Level {
    fn new() -> Level {
        Level {
            buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }

    fn push(&mut self, idx: usize, key: Key) {
        self.buckets[idx].push(key);
        self.occupied |= 1 << idx;
    }

    /// Index of the first occupied bucket at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let masked = self.occupied & (u64::MAX << from);
        if masked == 0 {
            None
        } else {
            Some(masked.trailing_zeros() as usize)
        }
    }
}

/// A min-queue of timestamped events with deterministic FIFO
/// tie-breaking and lazy cancellation, backed by a hierarchical timer
/// wheel. Drop-in alternative to [`crate::EventQueue`].
pub struct TimerWheel<E> {
    levels: Vec<Level>,
    /// Events beyond the top level's span (rebased if ever reached).
    overflow: Vec<Key>,
    /// Drained keys in exact `(time, seq)` order; `ready_pos` is the
    /// pop cursor.
    ready: Vec<Key>,
    ready_pos: usize,
    /// Every live event with `time < horizon` is in `ready`; everything
    /// at or after it is still bucketed. Horizon is always a multiple of
    /// the level-0 width.
    horizon: u64,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    /// Live (scheduled, not fired, not cancelled) event count.
    live: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: Vec::new(),
            ready: Vec::new(),
            ready_pos: 0,
            horizon: 0,
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            live: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Count of keys still held, including not-yet-collected cancelled
    /// ones.
    pub fn raw_len(&self) -> usize {
        (self.ready.len() - self.ready_pos)
            + self.overflow.len()
            + self
                .levels
                .iter()
                .map(|l| l.buckets.iter().map(Vec::len).sum::<usize>())
                .sum::<usize>()
    }

    fn alloc(&mut self, payload: E) -> (u32, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(matches!(self.slots[slot as usize], Slot::Vacant));
                self.slots[slot as usize] = Slot::Live { seq, payload };
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX live events");
                self.slots.push(Slot::Live { seq, payload });
                slot
            }
        };
        self.live += 1;
        (slot, seq)
    }

    /// Bucket `key` into the shallowest level whose current window
    /// reaches its time, or the overflow list.
    fn place(&mut self, key: Key) {
        let t = key.time.as_nanos();
        debug_assert!(t >= self.horizon);
        for l in 0..LEVELS {
            let w = width(l);
            if t / w < self.horizon / w + SLOTS as u64 {
                let idx = ((t / w) % SLOTS as u64) as usize;
                self.levels[l].push(idx, key);
                return;
            }
        }
        self.overflow.push(key);
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is in the past — scheduling into
    /// the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> WheelEventId {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} but clock is already at {}",
            self.now
        );
        let (slot, seq) = self.alloc(payload);
        let key = Key { time, seq, slot };
        if time.as_nanos() < self.horizon {
            // Below the drained horizon: splice into the pending part of
            // the ready batch at its exact `(time, seq)` position. `seq`
            // is larger than every ready entry's, so the partition point
            // is after all equal-or-earlier times. Only the pending
            // region is searched: the consumed prefix may hold
            // cancelled keys with times above `time` (skipped by
            // cursor, never removed), so the vec as a whole need not be
            // sorted — but `[ready_pos..]` always is.
            let at = self.ready_pos
                + self.ready[self.ready_pos..].partition_point(|k| k.time <= time);
            self.ready.insert(at, key);
        } else {
            self.place(key);
        }
        WheelEventId { slot, seq }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// had not yet fired (or been cancelled). Lazy: the key stays
    /// bucketed and is discarded when it surfaces.
    pub fn cancel(&mut self, id: WheelEventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s @ Slot::Live { .. }) => {
                let live_seq = match s {
                    Slot::Live { seq, .. } => *seq,
                    _ => unreachable!(),
                };
                if live_seq == id.seq {
                    *s = Slot::Cancelled;
                    self.live -= 1;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Drain buckets (cascading upper levels as needed) until the ready
    /// batch holds the next key, or every level and the overflow are
    /// exhausted.
    fn refill(&mut self) {
        if self.ready_pos < self.ready.len() {
            return;
        }
        self.ready.clear();
        self.ready_pos = 0;
        loop {
            if self.live == 0 {
                // Nothing real left; drop any lingering cancelled keys.
                for l in &mut self.levels {
                    if l.occupied != 0 {
                        for b in &mut l.buckets {
                            for k in b.drain(..) {
                                self.slots[k.slot as usize] = Slot::Vacant;
                                self.free.push(k.slot);
                            }
                        }
                        l.occupied = 0;
                    }
                }
                for k in self.overflow.drain(..) {
                    self.slots[k.slot as usize] = Slot::Vacant;
                    self.free.push(k.slot);
                }
                return;
            }
            // Each level's live keys occupy one 64-slot wrap window
            // starting at its current cursor slot `s_l = horizon / W_l`
            // (indices below the cursor's belong to the *next* aligned
            // block). Find the earliest-starting occupied slot across
            // overflow and all levels, scanning overflow first and
            // levels high→low with a strict `<`, so on equal starts the
            // coarser holder cascades down *before* the finer one
            // drains — a level-l slot can contain keys that belong in
            // the very level-0 slot about to drain.
            const OVF: usize = LEVELS;
            let mut best: Option<(u64, usize, usize)> = None; // (start, level, idx)
            if !self.overflow.is_empty() {
                let min = self
                    .overflow
                    .iter()
                    .map(|k| k.time.as_nanos())
                    .min()
                    .expect("overflow checked non-empty");
                best = Some((min / width(0) * width(0), OVF, 0));
            }
            for l in (0..LEVELS).rev() {
                if self.levels[l].occupied == 0 {
                    continue;
                }
                let w = width(l);
                let s = self.horizon / w;
                let idx = (s % SLOTS as u64) as usize;
                let (abs, i) = match self.levels[l].next_occupied(idx) {
                    Some(i) => (s - idx as u64 + i as u64, i),
                    None => {
                        // Only wrapped slots remain: next aligned block.
                        let i = self.levels[l].occupied.trailing_zeros() as usize;
                        (s - idx as u64 + SLOTS as u64 + i as u64, i)
                    }
                };
                let start = abs * w;
                if best.is_none_or(|(b, _, _)| start < b) {
                    best = Some((start, l, i));
                }
            }
            let Some((start, l, i)) = best else {
                unreachable!("live > 0 but no level or overflow holds a key");
            };
            debug_assert!(start >= self.horizon, "wheel horizon went backwards");
            if l == OVF {
                // Rebase: everything beyond the top span re-places now
                // that the horizon caught up.
                self.horizon = start;
                for k in std::mem::take(&mut self.overflow) {
                    self.place(k);
                }
            } else if l == 0 {
                let mut batch = std::mem::take(&mut self.levels[0].buckets[i]);
                self.levels[0].occupied &= !(1u64 << i);
                batch.sort_unstable_by_key(|k| (k.time, k.seq));
                self.horizon = start + width(0);
                self.ready = batch;
                return;
            } else {
                // Cascade: re-place the slot's keys; each fits level
                // l-1 or below relative to the advanced horizon.
                self.horizon = start;
                let batch = std::mem::take(&mut self.levels[l].buckets[i]);
                self.levels[l].occupied &= !(1u64 << i);
                for k in batch {
                    self.place(k);
                }
            }
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.refill();
            let key = self.ready.get(self.ready_pos).copied()?;
            self.ready_pos += 1;
            match std::mem::replace(&mut self.slots[key.slot as usize], Slot::Vacant) {
                Slot::Cancelled => {
                    self.free.push(key.slot);
                }
                Slot::Live { seq, payload } => {
                    debug_assert_eq!(seq, key.seq, "slot/key pairing broken");
                    debug_assert!(key.time >= self.now, "timer wheel went backwards");
                    self.free.push(key.slot);
                    self.now = key.time;
                    self.popped += 1;
                    self.live -= 1;
                    return Some((key.time, payload));
                }
                Slot::Vacant => unreachable!("bucketed key pointed at a vacant slot"),
            }
        }
    }

    /// Pop the next live event strictly before `limit`, or `None` when
    /// the wheel is empty or its next live event is at or past `limit`.
    /// Mirrors [`crate::EventQueue::pop_before`] so the two queues stay
    /// drop-in interchangeable for the windowed shard loop.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        loop {
            self.refill();
            let key = *self.ready.get(self.ready_pos)?;
            if key.time >= limit {
                // Ready keys are sorted and later buckets hold later
                // times, so no live event precedes `limit`.
                return None;
            }
            self.ready_pos += 1;
            match std::mem::replace(&mut self.slots[key.slot as usize], Slot::Vacant) {
                Slot::Cancelled => {
                    self.free.push(key.slot);
                }
                Slot::Live { seq, payload } => {
                    debug_assert_eq!(seq, key.seq, "slot/key pairing broken");
                    debug_assert!(key.time >= self.now, "timer wheel went backwards");
                    self.free.push(key.slot);
                    self.now = key.time;
                    self.popped += 1;
                    self.live -= 1;
                    return Some((key.time, payload));
                }
                Slot::Vacant => unreachable!("bucketed key pointed at a vacant slot"),
            }
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.refill();
            let key = *self.ready.get(self.ready_pos)?;
            if matches!(self.slots[key.slot as usize], Slot::Cancelled) {
                self.slots[key.slot as usize] = Slot::Vacant;
                self.free.push(key.slot);
                self.ready_pos += 1;
            } else {
                return Some(key.time);
            }
        }
    }

    /// Whether any live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
impl<E> TimerWheel<E> {
    /// Test-only structural invariant check; panics with a description
    /// of the first violated invariant.
    fn check_invariants(&self) {
        assert_eq!(self.horizon % width(0), 0, "horizon not slot-aligned");
        for (l, level) in self.levels.iter().enumerate() {
            let w = width(l);
            let s = self.horizon / w;
            for (idx, bucket) in level.buckets.iter().enumerate() {
                assert_eq!(
                    level.occupied & (1 << idx) != 0,
                    !bucket.is_empty(),
                    "occupancy bit mismatch level {l} idx {idx}"
                );
                for k in bucket {
                    let t = k.time.as_nanos();
                    assert!(t >= self.horizon, "bucketed key below horizon (level {l})");
                    let abs = t / w;
                    assert!(
                        abs >= s && abs < s + SLOTS as u64,
                        "key at level {l} outside wrap window: abs={abs} s={s}"
                    );
                    assert_eq!(abs as usize % SLOTS, idx, "key in wrong bucket");
                }
            }
        }
        for k in &self.overflow {
            assert!(k.time.as_nanos() >= self.horizon, "overflow key below horizon");
        }
        for pair in self.ready[self.ready_pos..].windows(2) {
            assert!(
                (pair[0].time, pair[0].seq) < (pair[1].time, pair[1].seq),
                "ready not sorted: ({:?},{}) then ({:?},{}), horizon {}, pos {}, len {}",
                pair[0].time,
                pair[0].seq,
                pair[1].time,
                pair[1].seq,
                self.horizon,
                self.ready_pos,
                self.ready.len()
            );
        }
        for k in &self.ready[self.ready_pos..] {
            assert!(
                k.time.as_nanos() < self.horizon || self.horizon == 0,
                "pending ready key at/above horizon"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::DetRng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimerWheel::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = TimerWheel::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn sub_slot_times_keep_exact_order() {
        // Distinct times inside one 1024 ns bucket must still pop by
        // time, not insertion order.
        let mut q = TimerWheel::new();
        q.schedule(SimTime::from_nanos(900), "b");
        q.schedule(SimTime::from_nanos(100), "a");
        q.schedule(SimTime::from_nanos(1000), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn cancellation() {
        let mut q = TimerWheel::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        let b = q.schedule(SimTime::from_micros(2), "b");
        q.schedule(SimTime::from_micros(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(!q.cancel(a), "cancel after fire reports false");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = TimerWheel::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_below_horizon_interleaves_exactly() {
        // Pop an event, then schedule below the drained horizon but
        // after `now`: the new event must pop in exact time order.
        let mut q = TimerWheel::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(900), "d");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(500), "b");
        q.schedule(SimTime::from_nanos(500), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn far_future_and_overflow_events_surface() {
        let mut q = TimerWheel::new();
        // Beyond the top level's ~70 000 s span → overflow list.
        q.schedule(SimTime::from_secs(100_000), "far");
        q.schedule(SimTime::from_nanos(5), "near");
        q.schedule(SimTime::from_secs(30), "mid");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_before_respects_limit() {
        let mut q = TimerWheel::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.schedule(SimTime::from_micros(5), "c");
        q.cancel(a);
        // Cancelled root below the limit is collected, "b" surfaces.
        assert_eq!(q.pop_before(SimTime::from_micros(4)), Some((SimTime::from_micros(2), "b")));
        // "c" is at 5 >= 4: untouched, clock stays where the pop left it.
        assert_eq!(q.pop_before(SimTime::from_micros(4)), None);
        assert_eq!(q.now(), SimTime::from_micros(2));
        // Limit is exclusive: an event exactly at the limit stays queued.
        assert_eq!(q.pop_before(SimTime::from_micros(5)), None);
        assert_eq!(q.pop_before(SimTime::from_micros(6)), Some((SimTime::from_micros(5), "c")));
        assert_eq!(q.pop_before(SimTime::MAX), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = TimerWheel::new();
        q.schedule(SimTime::from_micros(1), 0u32);
        let mut seen = vec![];
        while let Some((t, k)) = q.pop() {
            seen.push(k);
            if k < 5 {
                q.schedule(t + SimDuration::from_micros(1), k + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = TimerWheel::new();
        q.schedule(SimTime::from_micros(1), 0u32);
        let mut pops = 0u32;
        while let Some((t, k)) = q.pop() {
            pops += 1;
            if k < 10_000 {
                q.schedule(t + SimDuration::from_micros(1), k + 1);
            }
        }
        assert_eq!(pops, 10_001);
        assert!(q.slots.len() <= 2, "slab grew to {} slots", q.slots.len());
    }

    #[test]
    fn stale_id_does_not_cancel_reused_slot() {
        let mut q = TimerWheel::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.pop();
        q.schedule(SimTime::from_micros(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().unwrap().1, "b");
    }

    /// The wheel's whole reason to exist hinges on matching the heap
    /// queue exactly: run an adversarial random schedule/cancel/pop mix
    /// against `EventQueue` and demand identical observable traces.
    #[test]
    fn trace_equivalent_to_binary_heap() {
        for seed in 0..20u64 {
            let mut rng = DetRng::new(0xEE1_0000 + seed);
            let mut heap = EventQueue::new();
            let mut wheel = TimerWheel::new();
            let mut heap_ids = Vec::new();
            let mut wheel_ids = Vec::new();
            let mut trace_h = Vec::new();
            let mut trace_w = Vec::new();
            for step in 0..3_000u32 {
                match rng.gen_range(0..10u32) {
                    0..=5 => {
                        // Schedule at now + mixed-magnitude offset
                        // (sub-slot ns up to tens of ms).
                        let mag = rng.gen_range(0..4u32);
                        let off = match mag {
                            0 => rng.gen_range(0..1_000u64),
                            1 => rng.gen_range(0..100_000u64),
                            2 => rng.gen_range(0..10_000_000u64),
                            _ => rng.gen_range(0..100_000_000u64),
                        };
                        let t = heap.now() + SimDuration::from_nanos(off);
                        heap_ids.push(heap.schedule(t, step));
                        wheel_ids.push(wheel.schedule(t, step));
                        wheel.check_invariants();
                    }
                    6 => {
                        if !heap_ids.is_empty() {
                            let i = rng.gen_range(0..heap_ids.len());
                            let a = heap.cancel(heap_ids[i]);
                            let b = wheel.cancel(wheel_ids[i]);
                            wheel.check_invariants();
                            assert_eq!(a, b, "cancel verdicts diverged");
                        }
                    }
                    _ => {
                        let a = heap.pop();
                        let b = wheel.pop();
                        wheel.check_invariants();
                        assert_eq!(a, b, "pop diverged at step {step} seed {seed}");
                        if let Some(x) = a {
                            trace_h.push(x);
                        }
                        if let Some((t, _)) = b {
                            trace_w.push(t);
                        }
                        assert_eq!(heap.peek_time(), wheel.peek_time());
                        wheel.check_invariants();
                    }
                }
            }
            // Drain both to the end.
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "drain diverged seed {seed}");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(heap.events_processed(), wheel.events_processed());
        }
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = TimerWheel::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }
}
