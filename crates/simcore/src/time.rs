//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! run. Nanosecond resolution is fine enough to express serialization times
//! of single bytes at 100 Gbps (0.08 ns rounds to 0, so serialization is
//! computed per-packet where it is ~720 ns for a jumbo frame) while a `u64`
//! still covers ~584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel
    /// for disarmed timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future (which indicates a logic error upstream but must not
    /// panic in release runs).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor, saturating at the maximum.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used for RTO backoff with jitter and for
    /// EWMA-style smoothing where integer math would lose precision).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "scale factor must be non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        debug_assert!(lo <= hi);
        self.max(lo).min(hi)
    }

    /// Serialization delay for `bytes` at `rate_bps` bits per second,
    /// rounded up to a whole nanosecond so a non-empty packet never
    /// serializes in zero time.
    pub fn serialization(bytes: u64, rate_bps: u64) -> SimDuration {
        assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes * 8;
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs:
        // bits < 2^20, 1e9 < 2^30 -> product < 2^50.
        SimDuration((bits * 1_000_000_000).div_ceil(rate_bps))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        debug_assert!(self >= t, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(t.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        *self = *self - d;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div for SimDuration {
    /// Ratio of two durations.
    type Output = f64;
    fn div(self, d: SimDuration) -> f64 {
        self.0 as f64 / d.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        assert_eq!((t + d).as_micros(), 140);
        assert_eq!((t - d).as_micros(), 60);
        assert_eq!(((t + d) - t).as_micros(), 40);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::from_nanos(5);
        assert_eq!((t - SimDuration::from_nanos(10)).as_nanos(), 0);
        assert_eq!(
            t.saturating_since(SimTime::from_nanos(10)),
            SimDuration::ZERO
        );
        assert_eq!(t.checked_since(SimTime::from_nanos(10)), None);
        assert_eq!(
            t.checked_since(SimTime::from_nanos(2)),
            Some(SimDuration::from_nanos(3))
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn serialization_delay() {
        // 9000 B at 10 Gbps = 7.2 us.
        let d = SimDuration::serialization(9000, 10_000_000_000);
        assert_eq!(d.as_nanos(), 7_200);
        // 9000 B at 100 Gbps = 720 ns.
        let d = SimDuration::serialization(9000, 100_000_000_000);
        assert_eq!(d.as_nanos(), 720);
        // A single byte never serializes in zero time.
        let d = SimDuration::serialization(1, 100_000_000_000);
        assert!(d.as_nanos() >= 1);
        // Zero bytes is instantaneous.
        assert_eq!(
            SimDuration::serialization(0, 10_000_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!((d * 3).as_micros(), 300);
        assert_eq!((d / 4).as_micros(), 25);
        assert_eq!(d.mul_f64(1.5).as_micros(), 150);
        let ratio = SimDuration::from_micros(30) / SimDuration::from_micros(60);
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_clamp() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_micros(5).clamp(a, b),
            a,
            "below range clamps up"
        );
        assert_eq!(SimDuration::from_micros(25).clamp(a, b), b);
        assert_eq!(SimDuration::from_micros(15).clamp(a, b), SimDuration::from_micros(15));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_micros(180)), "180.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
    }
}
