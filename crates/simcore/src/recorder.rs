//! A bounded flight-recorder ring for post-mortem debugging.
//!
//! Deterministic runs are compared by digest (`RunResult::stats_digest`
//! in `rdcn`); when a digest diverges from its expected value the digest
//! alone says nothing about *where* the run went off the rails. The
//! flight recorder keeps the last K coarse-grained events of a run
//! (day starts, injected faults, completions, ...) in a fixed-size ring
//! so a divergence report can dump recent history without the run
//! paying for a full event log.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Default ring capacity: enough to cover several schedule weeks of
/// day-level events plus a burst of fault records.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// A fixed-capacity ring of timestamped event descriptions. Recording is
/// O(1); once full, the oldest event is evicted.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<(SimTime, String)>,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` events (`cap` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            ring: VecDeque::with_capacity(cap),
            recorded: 0,
        }
    }

    /// Append an event, evicting the oldest when the ring is full.
    pub fn record(&mut self, at: SimTime, event: impl Into<String>) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((at, event.into()));
        self.recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, String)> {
        self.ring.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Render the retained events as one line per event, oldest first.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (t, e) in &self.ring {
            out.push_str(&format!("  [{t}] {e}\n"));
        }
        out
    }

    /// Consume the recorder, yielding the retained events oldest first.
    pub fn into_events(self) -> Vec<(SimTime, String)> {
        self.ring.into_iter().collect()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10u64 {
            r.record(t(i), format!("ev{i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 10);
        let kept: Vec<&str> = r.events().map(|(_, e)| e.as_str()).collect();
        assert_eq!(kept, ["ev7", "ev8", "ev9"]);
    }

    #[test]
    fn dump_is_oldest_first_one_line_per_event() {
        let mut r = FlightRecorder::new(8);
        r.record(t(1), "first");
        r.record(t(2), "second");
        let d = r.dump();
        let first = d.find("first").unwrap();
        let second = d.find("second").unwrap();
        assert!(first < second);
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record(t(0), "a");
        r.record(t(1), "b");
        assert_eq!(r.len(), 1);
        assert_eq!(r.into_events(), vec![(t(1), "b".to_string())]);
    }
}
