//! Deterministic discrete-event queue.
//!
//! The queue is a binary heap keyed on `(time, seq)` where `seq` is a
//! monotonically increasing insertion counter. The counter makes the pop
//! order total: two events scheduled for the same instant are delivered in
//! the order they were scheduled. This is what makes whole-simulation runs
//! reproducible bit-for-bit from a seed, which the test suite relies on.
//!
//! Layout: heap entries are small fixed-size `{time, seq, slot}` keys;
//! payloads live in a slab (`Vec<Slot<E>>` plus a free list) addressed by
//! `slot`. Sift operations therefore move 24-byte keys instead of full
//! payloads (an `rdcn` event embeds a >100-byte `Segment`), and liveness/
//! cancellation checks are an array index into the slab rather than hash
//! lookups — the old implementation maintained two `HashSet<u64>`s and
//! paid an insert+remove per event. Each heap entry owns exactly one slab
//! slot, so a slot is recycled only when its entry pops; cancellation
//! stays lazy (mark the slot, discard the entry when it surfaces) but no
//! longer allocates.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// The `seq` disambiguates reuse: slots are recycled after an event fires
/// or its cancelled entry is collected, and a stale id whose slot now
/// holds a different event fails the seq match instead of cancelling it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    seq: u64,
}

/// Heap key: 24 bytes regardless of payload size, so sift-up/down during
/// push/pop moves small fixed entries.
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

enum Slot<E> {
    /// On the free list, available for the next `schedule`.
    Vacant,
    /// Scheduled and not yet fired or cancelled.
    Live { seq: u64, payload: E },
    /// Cancelled while live; freed when its heap entry surfaces.
    Cancelled,
}

/// A min-queue of timestamped events with deterministic FIFO tie-breaking
/// and lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress/perf counter).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is in the past — scheduling into
    /// the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} but clock is already at {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(matches!(self.slots[slot as usize], Slot::Vacant));
                self.slots[slot as usize] = Slot::Live { seq, payload };
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX live events");
                self.slots.push(Slot::Live { seq, payload });
                slot
            }
        };
        self.heap.push(Entry { time, seq, slot });
        EventId { slot, seq }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event had
    /// not yet fired (or been cancelled). Cancellation is lazy: the entry
    /// stays in the heap and is discarded when popped.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s @ Slot::Live { .. }) => {
                let live_seq = match s {
                    Slot::Live { seq, .. } => *seq,
                    _ => unreachable!(),
                };
                if live_seq == id.seq {
                    *s = Slot::Cancelled;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            match std::mem::replace(&mut self.slots[entry.slot as usize], Slot::Vacant) {
                Slot::Cancelled => {
                    self.free.push(entry.slot);
                }
                Slot::Live { seq, payload } => {
                    debug_assert_eq!(seq, entry.seq, "slot/entry pairing broken");
                    debug_assert!(entry.time >= self.now, "event queue went backwards");
                    self.free.push(entry.slot);
                    self.now = entry.time;
                    self.popped += 1;
                    return Some((entry.time, payload));
                }
                Slot::Vacant => unreachable!("heap entry pointed at a vacant slot"),
            }
        }
        None
    }

    /// Pop the next live event strictly before `limit`, or `None` when
    /// the queue is empty or its next live event is at or past `limit`.
    /// One root inspection instead of a `peek_time` + `pop` pair — the
    /// windowed shard loop calls this once per event.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.peek()?;
            if entry.time >= limit {
                // Heap order: every live event is at or past `limit`
                // too (a cancelled root is collected lazily later).
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry vanished");
            match std::mem::replace(&mut self.slots[entry.slot as usize], Slot::Vacant) {
                Slot::Cancelled => {
                    self.free.push(entry.slot);
                }
                Slot::Live { seq, payload } => {
                    debug_assert_eq!(seq, entry.seq, "slot/entry pairing broken");
                    debug_assert!(entry.time >= self.now, "event queue went backwards");
                    self.free.push(entry.slot);
                    self.now = entry.time;
                    self.popped += 1;
                    return Some((entry.time, payload));
                }
                Slot::Vacant => unreachable!("heap entry pointed at a vacant slot"),
            }
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain dead entries off the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if matches!(self.slots[entry.slot as usize], Slot::Cancelled) {
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.slots[entry.slot as usize] = Slot::Vacant;
                self.free.push(entry.slot);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Whether any live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Count of entries including not-yet-collected cancelled ones.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.schedule(SimTime::from_micros(10), ());
        q.schedule(SimTime::from_micros(25), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        let b = q.schedule(SimTime::from_micros(2), "b");
        q.schedule(SimTime::from_micros(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(!q.cancel(a), "cancel after fire reports false");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_limit() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.schedule(SimTime::from_micros(5), "c");
        q.cancel(a);
        // Cancelled root below the limit is collected, "b" surfaces.
        assert_eq!(q.pop_before(SimTime::from_micros(4)), Some((SimTime::from_micros(2), "b")));
        // "c" is at 5 >= 4: untouched, clock stays where the pop left it.
        assert_eq!(q.pop_before(SimTime::from_micros(4)), None);
        assert_eq!(q.now(), SimTime::from_micros(2));
        // Limit is exclusive: an event exactly at the limit stays queued.
        assert_eq!(q.pop_before(SimTime::from_micros(5)), None);
        assert_eq!(q.pop_before(SimTime::from_micros(6)), Some((SimTime::from_micros(5), "c")));
        assert_eq!(q.pop_before(SimTime::MAX), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Simulates the common pattern: handling an event schedules more.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 0u32);
        let mut seen = vec![];
        while let Some((t, k)) = q.pop() {
            seen.push(k);
            if k < 5 {
                q.schedule(t + SimDuration::from_micros(1), k + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn slots_are_recycled() {
        // A schedule/pop steady state must not grow the slab.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 0u32);
        let mut pops = 0u32;
        while let Some((t, k)) = q.pop() {
            pops += 1;
            if k < 10_000 {
                q.schedule(t + SimDuration::from_micros(1), k + 1);
            }
        }
        assert_eq!(pops, 10_001);
        assert!(q.slots.len() <= 2, "slab grew to {} slots", q.slots.len());
    }

    #[test]
    fn stale_id_does_not_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.pop();
        // "b" reuses a's slot; the stale id must not cancel it.
        q.schedule(SimTime::from_micros(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancelled_slot_reuse_after_collection() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(5), "a");
        q.cancel(a);
        assert!(q.is_empty()); // collects the cancelled entry, freeing the slot
        let b = q.schedule(SimTime::from_micros(6), "b");
        assert!(!q.cancel(a), "stale id on recycled slot");
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }
}
