//! Deterministic discrete-event queue.
//!
//! The queue is a binary heap keyed on `(time, seq)` where `seq` is a
//! monotonically increasing insertion counter. The counter makes the pop
//! order total: two events scheduled for the same instant are delivered in
//! the order they were scheduled. This is what makes whole-simulation runs
//! reproducible bit-for-bit from a seed, which the test suite relies on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of timestamped events with deterministic FIFO tie-breaking
/// and lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// Seqs scheduled but not yet fired or cancelled. Lets `cancel` answer
    /// accurately (and without leaking) whether the event was still live.
    live: std::collections::HashSet<u64>,
    /// Seqs cancelled while live; their heap entries are discarded on pop.
    cancelled: std::collections::HashSet<u64>,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress/perf counter).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is in the past — scheduling into
    /// the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} but clock is already at {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event had
    /// not yet fired (or been cancelled). Cancellation is lazy: the entry
    /// stays in the heap and is discarded when popped.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.live.remove(&entry.seq);
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain dead entries off the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = self.heap.pop().expect("peeked entry vanished").seq;
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Whether any live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Count of entries including not-yet-collected cancelled ones.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.schedule(SimTime::from_micros(10), ());
        q.schedule(SimTime::from_micros(25), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        let b = q.schedule(SimTime::from_micros(2), "b");
        q.schedule(SimTime::from_micros(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(!q.cancel(a), "cancel after fire reports false");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Simulates the common pattern: handling an event schedules more.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 0u32);
        let mut seen = vec![];
        while let Some((t, k)) = q.pop() {
            seen.push(k);
            if k < 5 {
                q.schedule(t + SimDuration::from_micros(1), k + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }
}
